// Package core orchestrates the complete GEF pipeline of the paper
// (Fig. 1): univariate feature selection from the forest's gains (§3.2),
// sampling-domain construction and synthetic-dataset generation from the
// forest's thresholds (§3.3), interaction selection (§3.4), and fitting
// of the explanation GAM (§3.5). No training data is consulted at any
// point — the forest is the only input.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/rules"
	"gef/internal/sampling"
	"gef/internal/smoother"
	"gef/internal/stats"
)

// Config controls the GEF pipeline. The analyst-facing knobs of the paper
// are NumUnivariate (|F′|), NumInteractions (|F″|), the sampling strategy
// and its K; everything else has paper defaults.
type Config struct {
	// Family selects the explainer family the fit stage produces
	// (default FamilyGAM, the paper's explainer). See Families() for the
	// registered names; every family shares the upstream pipeline
	// stages, so switching families on a warm engine reuses the cached
	// forest statistics, domains and D* sample.
	Family string
	// NumUnivariate is |F′|, the number of univariate components.
	NumUnivariate int
	// NumInteractions is |F″|, the number of bi-variate components
	// (0 disables interaction terms).
	NumInteractions int
	// Sampling selects the D* sampling strategy (default Equi-Size with
	// K = 64, the family the paper finds best after tuning).
	Sampling sampling.Config
	// InteractionStrategy ranks candidate pairs (default Gain-Path, the
	// paper's recommended cost/accuracy tradeoff).
	InteractionStrategy featsel.InteractionStrategy
	// NumSamples is N = |D*| (default 100,000, the paper's setting).
	NumSamples int
	// TestFraction of D* is held out to measure fidelity (default 0.2,
	// matching the paper's evaluation protocol).
	TestFraction float64
	// CategoricalThreshold is the paper's L: a feature with fewer than L
	// distinct thresholds is modelled with a factor term (default 10).
	CategoricalThreshold int
	// SplineBasis / TensorBasis are the per-axis basis sizes (defaults
	// 12 and 6).
	SplineBasis int
	TensorBasis int
	// GAM passes fitting options through (λ grid, IRLS limits); read by
	// the gam family only.
	GAM gam.Options
	// Rules configures the rule family (read when Family is
	// FamilyRules, or when the fallback ladder lands there).
	Rules rules.Config
	// Smoother configures the kernel-smoother family (read when Family
	// is FamilySmoother).
	Smoother smoother.Config
	// HStatSample is the D* subsample size used when
	// InteractionStrategy is H-Stat (default 150; the statistic costs
	// O(n²) forest evaluations per pair).
	HStatSample int
	// ForcedPairs bypasses interaction selection with an explicit F″
	// (the paper's Table 2 fixes the interactions to the injected truth).
	// When non-empty, NumInteractions and InteractionStrategy are ignored.
	ForcedPairs [][2]int
	// Seed drives all sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Family == "" {
		c.Family = FamilyGAM
	}
	c.Rules = c.Rules.WithDefaults()
	c.Smoother = c.Smoother.WithDefaults()
	if c.NumUnivariate == 0 {
		c.NumUnivariate = 5
	}
	if c.Sampling.Strategy == "" {
		c.Sampling.Strategy = sampling.EquiSize
		if c.Sampling.K == 0 {
			c.Sampling.K = 64
		}
	}
	if c.InteractionStrategy == "" {
		c.InteractionStrategy = featsel.GainPath
	}
	if c.NumSamples == 0 {
		c.NumSamples = 100000
	}
	if c.TestFraction == 0 {
		c.TestFraction = 0.2
	}
	if c.CategoricalThreshold == 0 {
		c.CategoricalThreshold = 10
	}
	if c.SplineBasis == 0 {
		c.SplineBasis = 12
	}
	if c.TensorBasis == 0 {
		c.TensorBasis = 6
	}
	if c.HStatSample == 0 {
		c.HStatSample = 150
	}
	return c
}

// minBasis is the smallest usable B-spline basis (degree+1 for the cubic
// splines gam builds) and the floor of the degradation ladder.
const minBasis = 4

// Validate rejects configurations with NaN, negative or otherwise
// out-of-domain knobs. Every violation wraps robust.ErrConfig, so callers
// can distinguish "bad configuration" from pipeline failures with
// errors.Is. Explain validates the defaulted configuration automatically;
// call Validate directly to pre-check analyst input.
//
//lint:ignore obsspan pure field checks over a handful of knobs; no work loop worth a span
func (c Config) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("gef: "+format+": %w", append(args, robust.ErrConfig)...)
	}
	if c.Family != "" {
		if _, err := surrogateFor(c.Family); err != nil {
			return err
		}
	}
	if t := c.Rules.Tolerance; math.IsNaN(t) || t < 0 {
		return fail("Rules.Tolerance = %v is not a non-negative number", t)
	}
	if c.Rules.SummarySample < 0 {
		return fail("Rules.SummarySample = %d is negative", c.Rules.SummarySample)
	}
	if c.Smoother.DictSize < 0 {
		return fail("Smoother.DictSize = %d is negative", c.Smoother.DictSize)
	}
	if c.Smoother.ProximitySample < 0 {
		return fail("Smoother.ProximitySample = %d is negative", c.Smoother.ProximitySample)
	}
	if t := c.Smoother.ProximityThreshold; math.IsNaN(t) || t < 0 || t > 1 {
		return fail("Smoother.ProximityThreshold = %v is outside [0, 1]", t)
	}
	if s := c.Smoother.BandwidthScale; math.IsNaN(s) || s < 0 {
		return fail("Smoother.BandwidthScale = %v is not a non-negative number", s)
	}
	if c.NumUnivariate < 0 {
		return fail("NumUnivariate = %d is negative", c.NumUnivariate)
	}
	if c.NumInteractions < 0 {
		return fail("NumInteractions = %d is negative", c.NumInteractions)
	}
	if c.NumSamples < 0 {
		return fail("NumSamples = %d is negative", c.NumSamples)
	}
	if math.IsNaN(c.TestFraction) || c.TestFraction < 0 || c.TestFraction >= 1 {
		return fail("TestFraction = %v is outside [0, 1)", c.TestFraction)
	}
	if c.CategoricalThreshold < 0 {
		return fail("CategoricalThreshold = %d is negative", c.CategoricalThreshold)
	}
	if c.SplineBasis != 0 && c.SplineBasis < minBasis {
		return fail("SplineBasis = %d; cubic B-splines need at least %d", c.SplineBasis, minBasis)
	}
	if c.TensorBasis != 0 && c.TensorBasis < minBasis {
		return fail("TensorBasis = %d; cubic B-splines need at least %d", c.TensorBasis, minBasis)
	}
	if c.HStatSample < 0 {
		return fail("HStatSample = %d is negative", c.HStatSample)
	}
	if c.Sampling.K < 0 {
		return fail("Sampling.K = %d is negative", c.Sampling.K)
	}
	if e := c.Sampling.Epsilon; math.IsNaN(e) || e < 0 {
		return fail("Sampling.Epsilon = %v is not a non-negative number", e)
	}
	for i, l := range c.GAM.Lambdas {
		if math.IsNaN(l) || l < 0 {
			return fail("GAM.Lambdas[%d] = %v is not a non-negative number", i, l)
		}
	}
	if t := c.GAM.Tol; math.IsNaN(t) || t < 0 {
		return fail("GAM.Tol = %v is not a non-negative number", t)
	}
	if c.GAM.MaxIRLS < 0 {
		return fail("GAM.MaxIRLS = %d is negative", c.GAM.MaxIRLS)
	}
	return nil
}

// Fidelity reports how faithfully the GAM mimics the forest on the
// held-out fraction of D*.
type Fidelity struct {
	RMSE float64 // RMSE between GAM and forest predictions
	R2   float64 // R² of GAM predictions against forest predictions
}

// Explanation is the result of running GEF on a forest.
type Explanation struct {
	// Family names the explainer family that actually produced the
	// model — normally Config.Family, but the cross-family fallback
	// ladder can land on a simpler family (see Degradations).
	Family string
	// Surrogate is the fitted explainer of whatever family. For the gam
	// family it wraps the same model Model exposes.
	Surrogate SurrogateModel
	// Model is the fitted GAM surrogate Γ when Family is FamilyGAM, nil
	// for every other family (their models live behind Surrogate).
	Model *gam.Model
	// Features is F′ in decreasing importance order.
	Features []int
	// Pairs is F″ in decreasing interaction-score order (empty when
	// NumInteractions is 0).
	Pairs []featsel.Pair
	// Domains are the sampling domains D_i used to build D*.
	Domains *sampling.Domains
	// Train and Test are the D* splits (Test drove the Fidelity numbers).
	Train, Test *dataset.Dataset
	// Fidelity is measured on Test against the forest's own predictions.
	Fidelity Fidelity
	// Forest is the explained model.
	Forest *forest.Forest
	// Config echoes the (defaulted) configuration used.
	Config Config
	// Degradations lists every structural simplification the pipeline
	// performed to survive degenerate inputs or numerical failures
	// (empty for a clean run). A non-empty list means the explanation is
	// valid but simpler than configured — inspect it before trusting
	// per-term attributions.
	Degradations []robust.Degradation
}

// Explain runs the full GEF pipeline on the forest through the shared
// process-wide engine (see Engine for the caching semantics).
func Explain(f *forest.Forest, cfg Config) (*Explanation, error) {
	return shared.ExplainCtx(context.Background(), f, cfg)
}

// ExplainCtx is Explain with context propagation: each pipeline stage
// opens an obs span under the caller's span, so traces show feature
// selection, domain construction, D* sampling/labelling, interaction
// ranking and the GAM fit (with per-λ children) individually. Runs on
// the shared process-wide engine; use NewEngine for an isolated cache.
func ExplainCtx(ctx context.Context, f *forest.Forest, cfg Config) (*Explanation, error) {
	return shared.ExplainCtx(ctx, f, cfg)
}

// ExplainCtx runs the staged pipeline through e's artifact cache. Any
// error leaving the pipeline is also stored in the flight recorder, so a
// post-hoc dump shows the failing run's last spans next to the error.
func (e *Engine) ExplainCtx(ctx context.Context, f *forest.Forest, cfg Config) (*Explanation, error) {
	ex, err := e.explainCtx(ctx, f, cfg)
	if err != nil {
		obs.RecordError("core.explain", err)
	}
	return ex, err
}

func (e *Engine) explainCtx(ctx context.Context, f *forest.Forest, cfg Config) (*Explanation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The pipeline owns a cancellable child context so the fault injector
	// can exercise mid-stage cancellation (robust.SiteCancel) exactly the
	// way an external caller would.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctx, root := obs.Start(ctx, "gef.explain",
		obs.Int("num_univariate", cfg.NumUnivariate),
		obs.Int("num_interactions", cfg.NumInteractions),
		obs.Int("num_samples", cfg.NumSamples),
		obs.Str("sampling", string(cfg.Sampling.Strategy)))
	defer root.End()
	// checkpoint guards each stage boundary: injected cancellation fires
	// here, and an already-dead context stops the pipeline with the typed
	// taxonomy error instead of burning the remaining stages.
	checkpoint := func(stage int) error {
		if robust.Fire(robust.SiteCancel, stage, 0) {
			cancel()
		}
		return robust.CtxErr(ctx.Err())
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("gef: invalid forest: %w", err)
	}
	p := &pipeline{eng: e, f: f, fp: f.Fingerprint(), cfg: cfg}

	// §3.2 — univariate selection F′ by accumulated gain.
	if err := checkpoint(0); err != nil {
		return nil, err
	}
	if err := p.selectFeatures(ctx, cfg.NumUnivariate); err != nil {
		return nil, err
	}
	if len(p.features) == 0 {
		return nil, fmt.Errorf("gef: forest has no split nodes to explain: %w", robust.ErrDegenerate)
	}

	// §3.3 — sampling domains and synthetic dataset D*. Features the GAM
	// will model as factors (|V_i| < L) always use All-Thresholds
	// domains: within a threshold cell the forest is constant, so extra
	// domain points only inflate the factor level count. The domains
	// stage owns the drop-feature ladder for collapsed domains.
	if err := checkpoint(1); err != nil {
		return nil, err
	}
	if err := p.buildDomains(ctx); err != nil {
		return nil, err
	}
	if err := checkpoint(2); err != nil {
		return nil, err
	}
	if err := p.buildSample(ctx); err != nil {
		return nil, err
	}

	// §3.4 — interaction selection F″ (independent of D*, except H-Stat
	// which needs a data sample).
	if err := checkpoint(3); err != nil {
		return nil, err
	}
	var pairs []featsel.Pair
	if len(cfg.ForcedPairs) > 0 {
		for _, fp := range cfg.ForcedPairs {
			a, b := fp[0], fp[1]
			if a > b {
				a, b = b, a
			}
			if a == b || a < 0 || b >= f.NumFeatures {
				return nil, fmt.Errorf("gef: invalid forced pair %v: %w", fp, robust.ErrConfig)
			}
			pairs = append(pairs, featsel.Pair{I: a, J: b})
		}
	} else if cfg.NumInteractions > 0 && len(p.features) >= 2 {
		ranking, err := p.rankInteractions(ctx)
		if err != nil {
			return nil, err
		}
		k := cfg.NumInteractions
		if k > len(ranking) {
			k = len(ranking)
		}
		pairs = append([]featsel.Pair(nil), ranking[:k]...)
	}

	// §3.5 — fit the selected explainer family on D*, degrading within
	// the family (e.g. the GAM structural ladder) and then across
	// families (fallback ladder) when numerical recovery is exhausted.
	if err := checkpoint(4); err != nil {
		return nil, err
	}
	model, err := p.fitSurrogate(ctx, pairs)
	if err != nil {
		return nil, fmt.Errorf("gef: fitting the %s explanation: %w", cfg.Family, err)
	}

	ex := &Explanation{
		Family:       model.Family(),
		Surrogate:    model,
		Features:     p.features,
		Pairs:        pairs,
		Domains:      p.domains,
		Train:        p.train,
		Test:         p.test,
		Forest:       f,
		Config:       cfg,
		Degradations: p.degr,
	}
	if gm, ok := model.(*gamModel); ok {
		ex.Model = gm.m
	}
	fctx, fsp := obs.Start(ctx, "gef.fidelity", obs.Int("test_rows", len(p.test.X)),
		obs.Str("family", ex.Family))
	pred, perr := model.PredictBatch(fctx, p.test.X)
	if perr != nil {
		fsp.End()
		return nil, perr
	}
	ex.Fidelity = Fidelity{
		RMSE: stats.RMSE(pred, p.test.Y),
		R2:   stats.R2(pred, p.test.Y),
	}
	fsp.Set(obs.F64("rmse", ex.Fidelity.RMSE), obs.F64("r2", ex.Fidelity.R2))
	fsp.End()
	root.Set(obs.F64("rmse", ex.Fidelity.RMSE), obs.F64("r2", ex.Fidelity.R2))
	return ex, nil
}

// fitSurrogate resolves Config.Family against the surrogate registry
// and runs the fit stage, walking the cross-family fallback ladder when
// a family fails numerically even after its own in-family recovery.
// Each fallback rung is recorded in the pipeline's degradation list, so
// the caller always knows which family actually produced the model.
func (p *pipeline) fitSurrogate(ctx context.Context, pairs []featsel.Pair) (SurrogateModel, error) {
	fam := p.cfg.Family
	for {
		sur, err := surrogateFor(fam)
		if err != nil {
			return nil, err
		}
		model, err := p.runFit(ctx, sur, pairs)
		if err == nil {
			return model, nil
		}
		next, ok := familyFallback[fam]
		if !ok || !errors.Is(err, robust.ErrNumerical) {
			return nil, err
		}
		robust.Record(ctx, &p.degr, robust.Degradation{
			Stage:  "fit",
			Action: robust.ActionFallbackFamily,
			Reason: err.Error(),
			Detail: fmt.Sprintf("family %s → %s", fam, next),
		})
		fam = next
	}
}

// runFit runs one family's fit through the engine. Families with a
// non-empty Key fragment cache their fitted model as a fit-stage
// artifact keyed under the sample key, the family, the pair list and
// the fragment; the gam family stays uncached (empty key) and surfaces
// its reuse through the engine's gam.BasisCache counters instead — the
// unconditional addStage below folds those deltas into the "fit" row.
func (p *pipeline) runFit(ctx context.Context, sur Surrogate, pairs []featsel.Pair) (SurrogateModel, error) {
	key := ""
	if frag := sur.Key(p.cfg); frag != "" {
		key = "ft|" + p.smpKey + "|fam=" + sur.Name() + "|p=" + pairsKey(pairs) + "|" + frag
	}
	h0, m0 := p.eng.basis.Counters()
	v, err := p.eng.runStage(ctx, p, stage{
		name: "fit",
		key:  func(*pipeline) string { return key },
		run: func(ctx context.Context, p *pipeline) (any, error) {
			model, degr, ferr := sur.Fit(ctx, &FitInput{
				Forest:     p.f,
				Config:     p.cfg,
				Features:   p.features,
				Pairs:      pairs,
				Thresholds: p.stats.thresholds,
				Domains:    p.domains,
				Train:      p.train,
				Test:       p.test,
				Basis:      p.eng.basis,
			})
			if ferr != nil {
				// In-family degradations that preceded the failure still
				// belong to the pipeline record (the ladder may fall back
				// to another family and succeed).
				p.degr = append(p.degr, degr...)
				return nil, ferr
			}
			return &fitArtifact{model: model, degr: degr}, nil
		},
	})
	h1, m1 := p.eng.basis.Counters()
	p.eng.addStage("fit", h1-h0, m1-m0)
	if err != nil {
		return nil, err
	}
	art := v.(*fitArtifact)
	// Replay the fit's degradations on cache hits too (metrics were
	// already counted when the artifact was computed — mirror the
	// domains stage and only extend the pipeline record here).
	p.degr = append(p.degr, art.degr...)
	return art.model, nil
}

// fitLadder fits spec, walking the structural degradation ladder when
// the fit fails numerically even after gam's in-stage recovery (ridge
// escalation, step-halving): drop tensor terms → halve spline bases →
// minimal-basis main-effects fit. Each rung is recorded in degradations;
// deadline/cancellation and degenerate-input errors abort immediately —
// a simpler model cannot repair those classes.
func fitLadder(ctx context.Context, spec gam.Spec, train *dataset.Dataset, opt gam.Options, degradations *[]robust.Degradation, cache *gam.BasisCache) (*gam.Model, error) {
	for {
		model, err := gam.FitCache(ctx, spec, train.X, train.Y, opt, cache)
		if err == nil {
			return model, nil
		}
		if !errors.Is(err, robust.ErrNumerical) {
			return nil, robust.CtxErr(err)
		}
		next, d, ok := degrade(spec)
		if !ok {
			return nil, fmt.Errorf("degradation ladder exhausted: %w", err)
		}
		d.Reason = err.Error()
		robust.Record(ctx, degradations, d)
		spec = next
	}
}

// degrade returns the next-simpler GAM structure, or ok=false when spec
// is already minimal. Factor terms are never touched: their size is
// dictated by the forest's threshold count, not by a knob.
func degrade(spec gam.Spec) (next gam.Spec, d robust.Degradation, ok bool) {
	// Rung 1: drop the tensor interaction terms.
	nTensor := 0
	for _, t := range spec.Terms {
		if t.Kind == gam.Tensor {
			nTensor++
		}
	}
	if nTensor > 0 {
		out := gam.Spec{Link: spec.Link}
		for _, t := range spec.Terms {
			if t.Kind != gam.Tensor {
				out.Terms = append(out.Terms, t)
			}
		}
		return out, robust.Degradation{
			Stage:  "gam",
			Action: robust.ActionDropTensors,
			Detail: fmt.Sprintf("%d tensor terms removed", nTensor),
		}, true
	}
	// Rung 2: halve the spline bases (floored at minBasis).
	maxB := 0
	for _, t := range spec.Terms {
		if t.Kind == gam.Spline && t.NumBasis > maxB {
			maxB = t.NumBasis
		}
	}
	clone := func() gam.Spec {
		return gam.Spec{Link: spec.Link, Terms: append([]gam.TermSpec(nil), spec.Terms...)}
	}
	if maxB > 2*minBasis {
		out := clone()
		for i, t := range out.Terms {
			if t.Kind == gam.Spline && t.NumBasis > minBasis {
				if t.NumBasis /= 2; t.NumBasis < minBasis {
					t.NumBasis = minBasis
				}
				out.Terms[i].NumBasis = t.NumBasis
			}
		}
		return out, robust.Degradation{
			Stage:  "gam",
			Action: robust.ActionShrinkBases,
			Detail: fmt.Sprintf("spline bases halved (max %d → %d)", maxB, maxB/2),
		}, true
	}
	// Rung 3: the minimal main-effects fit — every spline at the smallest
	// usable basis, no interactions (already gone after rung 1).
	if maxB > minBasis {
		out := clone()
		for i, t := range out.Terms {
			if t.Kind == gam.Spline {
				out.Terms[i].NumBasis = minBasis
			}
		}
		return out, robust.Degradation{
			Stage:  "gam",
			Action: robust.ActionMainEffects,
			Detail: fmt.Sprintf("minimal main-effects fit (basis %d)", minBasis),
		}, true
	}
	return spec, robust.Degradation{}, false
}

// buildSpec assembles the GAM structure: a spline term per selected
// feature — or a factor term when the forest's threshold count marks the
// feature as categorical (paper heuristic |V_i| < L) — plus a tensor term
// per selected pair. thresholds is the stats stage's cached
// forest.ThresholdsByFeature map (read only).
func buildSpec(f *forest.Forest, thresholds map[int][]float64, features []int, pairs []featsel.Pair, cfg Config) (gam.Spec, error) {
	spec := gam.Spec{Link: gam.Identity}
	if f.Objective == forest.BinaryLogistic {
		spec.Link = gam.Logit
	}
	for _, j := range features {
		if isCategorical(thresholds[j], cfg.CategoricalThreshold) {
			spec.Terms = append(spec.Terms, gam.TermSpec{Kind: gam.Factor, Feature: j})
		} else {
			spec.Terms = append(spec.Terms, gam.TermSpec{Kind: gam.Spline, Feature: j, NumBasis: cfg.SplineBasis})
		}
	}
	for _, p := range pairs {
		spec.Terms = append(spec.Terms, gam.TermSpec{
			Kind: gam.Tensor, Feature: p.I, Feature2: p.J, NumBasis: cfg.TensorBasis,
		})
	}
	return spec, nil
}

// isCategorical applies the paper's heuristic: fewer than L distinct
// thresholds marks a feature as categorical.
func isCategorical(thresholds []float64, l int) bool {
	distinct := 0
	for i, v := range thresholds {
		//lint:ignore floatcmp distinct-count over sorted thresholds; duplicates are bit-identical copies of the same split value
		if i == 0 || v != thresholds[i-1] {
			distinct++
		}
	}
	return distinct < l
}

// EvaluateOn measures fidelity on an external dataset (e.g. the original
// test split when it is available, as in the paper's Table 2): the R² of
// the GAM and of the forest against the dataset's labels, and the R² of
// the GAM against the forest's predictions.
func (e *Explanation) EvaluateOn(ds *dataset.Dataset) Table2Row {
	//lint:ignore errdrop background context cannot be canceled
	row, _ := e.EvaluateOnCtx(context.Background(), ds)
	return row
}

// EvaluateOnCtx is EvaluateOn with the caller's context threaded into
// the forest's batched prediction kernels, so deadlines cancel the
// traversal itself. Returns ctx.Err() if canceled.
func (e *Explanation) EvaluateOnCtx(ctx context.Context, ds *dataset.Dataset) (Table2Row, error) {
	forestPred, err := e.Forest.PredictBatchCtx(ctx, ds.X)
	if err != nil {
		return Table2Row{}, robust.CtxErr(err)
	}
	var gamPred []float64
	if e.Model != nil {
		gamPred = e.Model.PredictBatch(ds.X)
	} else {
		gamPred, err = e.Surrogate.PredictBatch(ctx, ds.X)
		if err != nil {
			return Table2Row{}, robust.CtxErr(err)
		}
	}
	return Table2Row{
		ForestVsLabels: stats.R2(forestPred, ds.Y),
		GamVsForest:    stats.R2(gamPred, forestPred),
		GamVsLabels:    stats.R2(gamPred, ds.Y),
	}, nil
}

// Table2Row holds the three R² numbers of the paper's Table 2 for one
// dataset.
type Table2Row struct {
	ForestVsLabels float64 // R² of T against y
	GamVsForest    float64 // R² of Γ against T(x)
	GamVsLabels    float64 // R² of Γ against y
}

// LocalExplanation describes one prediction (paper Fig. 11): the
// intercept, per-term contributions sorted by magnitude, and the forest
// and surrogate predictions for cross-checking. Intercept and
// Contributions are populated by the gam family only — other families
// report the surrogate prediction without an additive decomposition
// (the rule family's per-instance rules live on its concrete model).
type LocalExplanation struct {
	Intercept     float64
	Contributions []gam.Contribution
	// GamPrediction is the surrogate's prediction for x, whatever the
	// family (the name predates pluggable families and is kept for
	// compatibility).
	GamPrediction float64
	ForestOutput  float64
}

// ExplainInstance produces the local explanation of x.
func (e *Explanation) ExplainInstance(x []float64) LocalExplanation {
	le := LocalExplanation{}
	if e.Forest != nil {
		le.ForestOutput = e.Forest.Predict(x)
	}
	if e.Model != nil {
		le.Intercept, le.Contributions = e.Model.Explain(x)
		le.GamPrediction = e.Model.Predict(x)
	} else if e.Surrogate != nil {
		le.GamPrediction = e.Surrogate.Predict(x)
	}
	return le
}
