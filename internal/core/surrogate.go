package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/lime"
	"gef/internal/robust"
	"gef/internal/rules"
	"gef/internal/sampling"
	"gef/internal/smoother"
	"gef/internal/stats"
)

// Explainer family names. The fit stage is a registry of Surrogate
// implementations selected by Config.Family; every other pipeline stage
// (feature selection, domains, D* sampling, interaction ranking) is
// shared, so switching families on a warm engine reuses all upstream
// artifacts.
const (
	// FamilyGAM is the paper's explainer: a penalized B-spline GAM with
	// optional tensor interaction terms (the default).
	FamilyGAM = "gam"
	// FamilyRules produces per-prediction reduced conjunctive rules in
	// the LionForests style (internal/rules).
	FamilyRules = "rules"
	// FamilySmoother is the forest-guided kernel smoother with
	// proximity-adaptive bandwidths (internal/smoother).
	FamilySmoother = "smoother"
	// FamilyLIME is the global-LIME baseline: one ridge surrogate fitted
	// around the sampling domains' fill point (internal/lime).
	FamilyLIME = "lime"
	// FamilyDistill is the single-tree distillation baseline
	// (internal/distill's tree trained on the shared D*).
	FamilyDistill = "distill"
)

// SurrogateModel is a fitted explainer of any family: it predicts the
// forest's response and serializes its family-specific payload. The
// richer per-family APIs (GAM term curves, rule extraction, bandwidth
// reports) stay on the concrete types; Explanation.Model exposes the
// GAM directly and Explanation.Surrogate carries every family.
type SurrogateModel interface {
	// Family returns the family name the model was fitted by.
	Family() string
	// Predict evaluates the surrogate at one full-width instance.
	Predict(x []float64) float64
	// PredictBatch evaluates every row (parallel families honor the
	// bitwise-determinism contract).
	PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error)
	// MarshalPayload serializes the family-specific model state for the
	// versioned explanation format.
	MarshalPayload() ([]byte, error)
}

// FitInput is everything the shared pipeline hands a Surrogate: the
// forest, the defaulted configuration, and the cached upstream artifacts
// (selected features, ranked pairs, threshold sets, sampling domains and
// the D* split). Artifacts are shared with the engine cache — fitters
// must treat them as immutable.
type FitInput struct {
	Forest     *forest.Forest
	Config     Config
	Features   []int
	Pairs      []featsel.Pair
	Thresholds map[int][]float64
	Domains    *sampling.Domains
	Train      *dataset.Dataset
	Test       *dataset.Dataset
	Basis      *gam.BasisCache
}

// Surrogate is one pluggable explainer family behind the fit stage.
type Surrogate interface {
	// Name is the family name (one of the Family* constants for the
	// built-in families).
	Name() string
	// Key returns the family-specific fragment of the fit-stage cache
	// key, derived from the effective (defaulted) configuration. An
	// empty fragment marks the family's fits uncacheable — the GAM
	// family does this because gam.BasisCache already captures its reuse
	// at a finer grain.
	Key(cfg Config) string
	// Fit fits the family on the shared artifacts. Returned degradations
	// are recorded by the caller's pipeline; an ErrNumerical failure
	// makes the fit stage walk the family fallback ladder.
	Fit(ctx context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error)
}

// PayloadCodec is implemented by families whose serialized payload can
// be reloaded into a (possibly reduced-capability) SurrogateModel.
type PayloadCodec interface {
	UnmarshalPayload(data []byte) (SurrogateModel, error)
}

// familyFallback is the cross-family degradation ladder, walked when a
// family fails with ErrNumerical even after its own in-family recovery:
// richer families fall back to structurally simpler ones. The rules
// family is the floor — its fit only needs the forest's own outputs.
var familyFallback = map[string]string{
	FamilySmoother: FamilyGAM,
	FamilyGAM:      FamilyRules,
}

var (
	surrogatesMu sync.Mutex
	surrogates   = make(map[string]Surrogate)
)

// RegisterSurrogate adds a family to the fit-stage registry. Registering
// a duplicate name panics: families are wired at init time and a
// collision is a programming error, not a runtime condition.
func RegisterSurrogate(s Surrogate) {
	surrogatesMu.Lock()
	defer surrogatesMu.Unlock()
	if _, dup := surrogates[s.Name()]; dup {
		panic(fmt.Sprintf("core: surrogate family %q registered twice", s.Name()))
	}
	surrogates[s.Name()] = s
}

// Families returns the registered family names, sorted.
//
//lint:ignore obsspan registry snapshot over a handful of entries; too cheap to span
func Families() []string {
	surrogatesMu.Lock()
	defer surrogatesMu.Unlock()
	names := make([]string, 0, len(surrogates))
	for n := range surrogates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// surrogateFor resolves a family name, failing with a typed ErrConfig
// that lists the registered families.
func surrogateFor(name string) (Surrogate, error) {
	surrogatesMu.Lock()
	s, ok := surrogates[name]
	surrogatesMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gef: unknown explainer family %q (registered: %s): %w",
			name, strings.Join(Families(), ", "), robust.ErrConfig)
	}
	return s, nil
}

func init() {
	RegisterSurrogate(gamSurrogate{})
	RegisterSurrogate(rulesSurrogate{})
	RegisterSurrogate(smootherSurrogate{})
	RegisterSurrogate(limeSurrogate{})
	RegisterSurrogate(distillSurrogate{})
}

// fitArtifact is the fit stage's cacheable output: the fitted model plus
// the degradations its fit recorded, so a cache hit replays the same
// simplification record the original computation produced (mirroring
// domainsArtifact).
type fitArtifact struct {
	model SurrogateModel
	degr  []robust.Degradation
}

// cost approximates the artifact's resident bytes for the engine's
// cache budget (see artifactCost).
func (a *fitArtifact) cost() int64 {
	switch m := a.model.(type) {
	case *smootherModel:
		p := m.m.Payload()
		c := int64(len(p.Dict))*int64(len(p.Features)+1)*8 + 512
		return c + int64(len(p.Bandwidths))*8
	case *distillModel:
		nodes := 0
		for _, t := range m.tree.Trees {
			nodes += len(t.Nodes)
		}
		return int64(nodes)*48 + 512
	case *limeModel:
		return int64(len(m.p.Weights)+len(m.p.X0)+len(m.p.SDs))*8 + 512
	default:
		// Rule models hold a compiled-forest pointer (owned by the
		// process-wide forest.Compiled cache, not this entry) plus a
		// summary; GAM models are never cached here.
		return 2048
	}
}

// pairsKey renders a pair list compactly for fit-stage cache keys.
func pairsKey(pairs []featsel.Pair) string {
	var b strings.Builder
	for i, pr := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(pr.I))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(pr.J))
	}
	return b.String()
}

// --- gam -------------------------------------------------------------------

// gamSurrogate adapts the paper's GAM fit (spec construction + the
// structural degradation ladder) to the Surrogate interface.
type gamSurrogate struct{}

func (gamSurrogate) Name() string { return FamilyGAM }

// Key returns "" — fitted GAMs are never cached as artifacts; their
// reuse is captured at a finer grain by the engine's gam.BasisCache.
func (gamSurrogate) Key(Config) string { return "" }

func (gamSurrogate) Fit(ctx context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error) {
	spec, err := buildSpec(in.Forest, in.Thresholds, in.Features, in.Pairs, in.Config)
	if err != nil {
		return nil, nil, err
	}
	var degr []robust.Degradation
	m, err := fitLadder(ctx, spec, in.Train, in.Config.GAM, &degr, in.Basis)
	if err != nil {
		return nil, degr, err
	}
	return &gamModel{m: m}, degr, nil
}

func (gamSurrogate) UnmarshalPayload(data []byte) (SurrogateModel, error) {
	m, err := gam.UnmarshalModel(data)
	if err != nil {
		return nil, err
	}
	return &gamModel{m: m}, nil
}

// gamModel wraps the fitted GAM behind the family-neutral interface.
type gamModel struct{ m *gam.Model }

func (g *gamModel) Family() string             { return FamilyGAM }
func (g *gamModel) Predict(x []float64) float64 { return g.m.Predict(x) }

func (g *gamModel) PredictBatch(_ context.Context, xs [][]float64) ([]float64, error) {
	return g.m.PredictBatch(xs), nil
}

func (g *gamModel) MarshalPayload() ([]byte, error) { return g.m.Marshal(false) }

// --- rules -----------------------------------------------------------------

type rulesSurrogate struct{}

func (rulesSurrogate) Name() string { return FamilyRules }

func (rulesSurrogate) Key(cfg Config) string {
	c := cfg.Rules.WithDefaults()
	return "tol=" + fbits(c.Tolerance) + "|ss=" + strconv.Itoa(c.SummarySample)
}

func (rulesSurrogate) Fit(ctx context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error) {
	m, err := rules.Fit(ctx, in.Forest, in.Train, in.Config.Rules)
	if err != nil {
		return nil, nil, err
	}
	return &rulesModel{m: m}, nil, nil
}

func (rulesSurrogate) UnmarshalPayload(data []byte) (SurrogateModel, error) {
	var s rules.Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing rules payload: %w", err)
	}
	return &rulesModel{m: rules.FromSummary(s)}, nil
}

// rulesModel wraps the rule surrogate; Rules exposes the concrete model
// for per-instance rule extraction.
type rulesModel struct{ m *rules.Model }

func (r *rulesModel) Family() string              { return FamilyRules }
func (r *rulesModel) Predict(x []float64) float64 { return r.m.Predict(x) }

func (r *rulesModel) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	return r.m.PredictBatch(ctx, xs)
}

func (r *rulesModel) MarshalPayload() ([]byte, error) { return json.Marshal(r.m.Summary()) }

// Rules returns the concrete rule model (for Explain / Summary).
func (r *rulesModel) Rules() *rules.Model { return r.m }

// --- smoother --------------------------------------------------------------

type smootherSurrogate struct{}

func (smootherSurrogate) Name() string { return FamilySmoother }

func (smootherSurrogate) Key(cfg Config) string {
	c := cfg.Smoother.WithDefaults()
	return "d=" + strconv.Itoa(c.DictSize) + "|ps=" + strconv.Itoa(c.ProximitySample) +
		"|pt=" + fbits(c.ProximityThreshold) + "|bs=" + fbits(c.BandwidthScale)
}

func (smootherSurrogate) Fit(ctx context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error) {
	m, err := smoother.Fit(ctx, in.Forest, in.Features, in.Train, in.Config.Smoother)
	if err != nil {
		return nil, nil, err
	}
	return &smootherModel{m: m}, nil, nil
}

func (smootherSurrogate) UnmarshalPayload(data []byte) (SurrogateModel, error) {
	var p smoother.Payload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing smoother payload: %w", err)
	}
	m, err := smoother.FromPayload(p)
	if err != nil {
		return nil, err
	}
	return &smootherModel{m: m}, nil
}

type smootherModel struct{ m *smoother.Model }

func (s *smootherModel) Family() string              { return FamilySmoother }
func (s *smootherModel) Predict(x []float64) float64 { return s.m.Predict(x) }

func (s *smootherModel) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	return s.m.PredictBatch(ctx, xs)
}

func (s *smootherModel) MarshalPayload() ([]byte, error) { return json.Marshal(s.m.Payload()) }

// Smoother returns the concrete kernel-smoother model.
func (s *smootherModel) Smoother() *smoother.Model { return s.m }

// --- lime ------------------------------------------------------------------

// limeBackgroundCap bounds the D* rows used as the LIME background (the
// scale estimate converges long before that) and limeSamples the
// perturbation count of the single global fit.
const (
	limeBackgroundCap = 512
	limeSamples       = 2000
)

// limeSurrogate fits ONE LIME ridge surrogate around the sampling
// domains' fill point and serves it globally. That is deliberately the
// method's weakness the extra-families comparison exposes: a local
// linear model asked a global question.
type limeSurrogate struct{}

func (limeSurrogate) Name() string { return FamilyLIME }

// Key versions the adapter: the fit depends only on the D* artifacts
// (already in the stage key) and Config.Seed (already in the sample
// key), so a constant fragment makes it cacheable.
func (limeSurrogate) Key(Config) string { return "v1" }

//lint:ignore obsspan runs inside the engine's fit-stage span; lime.Explain carries its own instrumentation
func (limeSurrogate) Fit(_ context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error) {
	background := in.Train.X
	if len(background) > limeBackgroundCap {
		background = background[:limeBackgroundCap]
	}
	x0 := append([]float64(nil), in.Domains.Fill...)
	ex, err := lime.Explain(in.Forest.Predict, background, x0, lime.Config{
		NumSamples: limeSamples,
		Seed:       in.Config.Seed + 11,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("lime fit: %w: %v", robust.ErrNumerical, err)
	}
	// Recompute the per-feature scales exactly as lime.Explain does, so
	// the wrapped predictor applies the coefficients in the same z-space
	// they were fitted in.
	sds := make([]float64, len(x0))
	col := make([]float64, len(background))
	for j := range sds {
		for i, row := range background {
			col[i] = row[j]
		}
		sds[j] = stats.StdDev(col)
		if sds[j] == 0 {
			sds[j] = 1
		}
	}
	return &limeModel{p: limePayload{
		Intercept: ex.Intercept,
		Weights:   ex.Weights,
		X0:        x0,
		SDs:       sds,
		R2:        ex.R2,
	}}, nil, nil
}

func (limeSurrogate) UnmarshalPayload(data []byte) (SurrogateModel, error) {
	var p limePayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing lime payload: %w", err)
	}
	if len(p.Weights) != len(p.X0) || len(p.SDs) != len(p.X0) {
		return nil, fmt.Errorf("inconsistent lime payload (%d weights, %d anchors, %d scales)",
			len(p.Weights), len(p.X0), len(p.SDs))
	}
	return &limeModel{p: p}, nil
}

// limePayload is the serialized global-LIME surrogate: the ridge
// coefficients plus the anchor point and scales they standardize
// against.
type limePayload struct {
	Intercept float64   `json:"intercept"`
	Weights   []float64 `json:"weights"`
	X0        []float64 `json:"x0"`
	SDs       []float64 `json:"sds"`
	R2        float64   `json:"r2"`
}

type limeModel struct{ p limePayload }

func (l *limeModel) Family() string { return FamilyLIME }

//lint:ignore obsspan per-row hot path (one multiply-add per feature); PredictBatch is the spanned entry
func (l *limeModel) Predict(x []float64) float64 {
	out := l.p.Intercept
	for j, w := range l.p.Weights {
		out += w * (x[j] - l.p.X0[j]) / l.p.SDs[j]
	}
	return out
}

//lint:ignore obsspan a linear pass over rows bounded by the caller's fidelity span; spanning here would double-count
func (l *limeModel) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	if err := robust.CtxErr(ctx.Err()); err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = l.Predict(x)
	}
	return out, nil
}

func (l *limeModel) MarshalPayload() ([]byte, error) { return json.Marshal(l.p) }

// --- distill ---------------------------------------------------------------

// distillSurrogate trains internal/distill's single shallow tree, but on
// the pipeline's shared D* split instead of resampling its own — so a
// family sweep on one engine reuses the sample artifact across all five
// families.
type distillSurrogate struct{}

func (distillSurrogate) Name() string { return FamilyDistill }

func (distillSurrogate) Key(Config) string { return "v1" }

func (distillSurrogate) Fit(ctx context.Context, in *FitInput) (SurrogateModel, []robust.Degradation, error) {
	if err := robust.CtxErr(ctx.Err()); err != nil {
		return nil, nil, err
	}
	// Distillation targets are forest outputs on the response scale; a
	// single regression tree fits both tasks (matching internal/distill).
	ds := &dataset.Dataset{X: in.Train.X, Y: in.Train.Y, Task: dataset.Regression}
	tree, err := gbdt.Train(ds, gbdt.Params{
		NumTrees:       1,
		NumLeaves:      distillLeaves(in.Config),
		LearningRate:   1, // no shrinkage: the single tree is the model
		MinSamplesLeaf: 20,
		Lambda:         1e-9,
		Seed:           in.Config.Seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("distill fit: %w: %v", robust.ErrNumerical, err)
	}
	return &distillModel{tree: tree}, nil, nil
}

// distillLeaves maps the distill default through (kept as a function so
// a future Config knob lands in exactly one place).
func distillLeaves(Config) int { return 16 }

func (distillSurrogate) UnmarshalPayload(data []byte) (SurrogateModel, error) {
	tree, err := forest.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("parsing distill payload: %w", err)
	}
	return &distillModel{tree: tree}, nil
}

type distillModel struct{ tree *forest.Forest }

func (d *distillModel) Family() string              { return FamilyDistill }
func (d *distillModel) Predict(x []float64) float64 { return d.tree.Predict(x) }

func (d *distillModel) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	out, err := d.tree.PredictBatchCtx(ctx, xs)
	if err != nil {
		return nil, robust.CtxErr(err)
	}
	return out, nil
}

func (d *distillModel) MarshalPayload() ([]byte, error) { return forest.Marshal(d.tree) }

// Tree returns the distilled surrogate tree (for distill.Result.Rules
// style rendering).
func (d *distillModel) Tree() *forest.Forest { return d.tree }
