package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"gef/internal/robust"
	"gef/internal/rules"
)

// TestExplanationRoundTrip: Marshal → Unmarshal preserves the model's
// predictions bitwise and every serialized structural field, including
// the degradation record.
func TestExplanationRoundTrip(t *testing.T) {
	f := gprimeForest(t)
	cfg := quickCfg()
	cfg.NumInteractions = 1
	e, err := NewEngine().Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	// Degradations must survive the trip even though this run is clean.
	e.Degradations = append(e.Degradations, robust.Degradation{
		Stage:  "gam",
		Action: robust.ActionDropTensors,
		Reason: "synthetic entry for round-trip coverage",
		Detail: "1 tensor terms removed",
	})

	data, err := e.Marshal(true)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}

	if !reflect.DeepEqual(got.Features, e.Features) {
		t.Errorf("Features: got %v, want %v", got.Features, e.Features)
	}
	if !reflect.DeepEqual(got.Pairs, e.Pairs) {
		t.Errorf("Pairs: got %v, want %v", got.Pairs, e.Pairs)
	}
	if !reflect.DeepEqual(got.Degradations, e.Degradations) {
		t.Errorf("Degradations: got %v, want %v", got.Degradations, e.Degradations)
	}
	if got.Fidelity != e.Fidelity {
		t.Errorf("Fidelity: got %+v, want %+v", got.Fidelity, e.Fidelity)
	}
	if !reflect.DeepEqual(got.Config, e.Config) {
		t.Errorf("Config: got %+v, want %+v", got.Config, e.Config)
	}
	if got.Domains == nil || !reflect.DeepEqual(got.Domains.Points, e.Domains.Points) {
		t.Errorf("Domains did not round-trip")
	}
	if got.Forest != nil || got.Train != nil || got.Test != nil {
		t.Error("Forest/Train/Test must be nil on a reloaded explanation")
	}

	// The reloaded model must predict bitwise identically.
	for i, x := range e.Test.X[:50] {
		want := e.Model.Predict(x)
		if have := got.Model.Predict(x); have != want {
			t.Fatalf("prediction %d: got %v, want %v", i, have, want)
		}
	}

	if _, err := Unmarshal([]byte(`{"version":99,"model":{}}`)); err == nil {
		t.Error("future format version accepted")
	}
}

// TestFamilyPayloadRoundTrip covers the non-GAM families' serialization
// path: the family tag and the family-specific payload must survive the
// trip, and the reloaded surrogate must predict bitwise identically
// where the family supports standalone prediction.
func TestFamilyPayloadRoundTrip(t *testing.T) {
	f := gprimeForest(t)

	t.Run("smoother", func(t *testing.T) {
		cfg := quickCfg()
		cfg.Family = FamilySmoother
		e, err := NewEngine().Explain(f, cfg)
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		data, err := e.Marshal(false)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if got.Family != FamilySmoother {
			t.Fatalf("family = %q, want %q", got.Family, FamilySmoother)
		}
		if got.Model != nil {
			t.Fatal("smoother explanation must not carry a GAM model")
		}
		// The smoother payload is self-contained: the reloaded model must
		// predict bitwise identically to the in-process one.
		for i, x := range e.Test.X[:50] {
			want := e.Surrogate.Predict(x)
			if have := got.Surrogate.Predict(x); have != want {
				t.Fatalf("prediction %d: got %v, want %v", i, have, want)
			}
		}
	})

	t.Run("rules", func(t *testing.T) {
		cfg := quickCfg()
		cfg.Family = FamilyRules
		e, err := NewEngine().Explain(f, cfg)
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		data, err := e.Marshal(false)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		if got.Family != FamilyRules {
			t.Fatalf("family = %q, want %q", got.Family, FamilyRules)
		}
		// A reloaded rule model retains only its summary (the forest is
		// not serialized): the fitted summary must round-trip exactly.
		type summarized interface{ Rules() *rules.Model }
		want := e.Surrogate.(summarized).Rules().Summary()
		have := got.Surrogate.(summarized).Rules().Summary()
		if want != have {
			t.Fatalf("summary: got %+v, want %+v", have, want)
		}
		if got.Surrogate.(summarized).Rules().Fitted() {
			t.Fatal("reloaded rule model claims to be fitted")
		}
	})
}

// TestUnknownFamilyTypedError pins forward compatibility: a blob tagged
// with a family this build does not register must fail with a typed
// ErrConfig naming the family — never a panic, never a silent gam parse.
func TestUnknownFamilyTypedError(t *testing.T) {
	_, err := Unmarshal([]byte(`{"version":2,"family":"holo","payload":{}}`))
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	if !errors.Is(err, robust.ErrConfig) {
		t.Fatalf("err = %v, want robust.ErrConfig", err)
	}
	if !strings.Contains(err.Error(), "holo") {
		t.Fatalf("error %q does not name the unknown family", err)
	}
}

// TestV1BlobStillLoads pins backward compatibility: version-1 blobs
// (written before explainer families existed) carry no family tag and
// must load as gam.
func TestV1BlobStillLoads(t *testing.T) {
	f := gprimeForest(t)
	e, err := NewEngine().Explain(f, quickCfg())
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	data, err := e.Marshal(false)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Rewrite the blob to the v1 shape: version 1, no family field.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = json.RawMessage("1")
	delete(raw, "family")
	v1, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(v1)
	if err != nil {
		t.Fatalf("v1 blob rejected: %v", err)
	}
	if got.Family != FamilyGAM || got.Model == nil {
		t.Fatalf("v1 blob loaded as family %q (model nil: %v), want gam", got.Family, got.Model == nil)
	}
}
