package core

import (
	"reflect"
	"testing"

	"gef/internal/robust"
)

// TestExplanationRoundTrip: Marshal → Unmarshal preserves the model's
// predictions bitwise and every serialized structural field, including
// the degradation record.
func TestExplanationRoundTrip(t *testing.T) {
	f := gprimeForest(t)
	cfg := quickCfg()
	cfg.NumInteractions = 1
	e, err := NewEngine().Explain(f, cfg)
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	// Degradations must survive the trip even though this run is clean.
	e.Degradations = append(e.Degradations, robust.Degradation{
		Stage:  "gam",
		Action: robust.ActionDropTensors,
		Reason: "synthetic entry for round-trip coverage",
		Detail: "1 tensor terms removed",
	})

	data, err := e.Marshal(true)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}

	if !reflect.DeepEqual(got.Features, e.Features) {
		t.Errorf("Features: got %v, want %v", got.Features, e.Features)
	}
	if !reflect.DeepEqual(got.Pairs, e.Pairs) {
		t.Errorf("Pairs: got %v, want %v", got.Pairs, e.Pairs)
	}
	if !reflect.DeepEqual(got.Degradations, e.Degradations) {
		t.Errorf("Degradations: got %v, want %v", got.Degradations, e.Degradations)
	}
	if got.Fidelity != e.Fidelity {
		t.Errorf("Fidelity: got %+v, want %+v", got.Fidelity, e.Fidelity)
	}
	if !reflect.DeepEqual(got.Config, e.Config) {
		t.Errorf("Config: got %+v, want %+v", got.Config, e.Config)
	}
	if got.Domains == nil || !reflect.DeepEqual(got.Domains.Points, e.Domains.Points) {
		t.Errorf("Domains did not round-trip")
	}
	if got.Forest != nil || got.Train != nil || got.Test != nil {
		t.Error("Forest/Train/Test must be nil on a reloaded explanation")
	}

	// The reloaded model must predict bitwise identically.
	for i, x := range e.Test.X[:50] {
		want := e.Model.Predict(x)
		if have := got.Model.Predict(x); have != want {
			t.Fatalf("prediction %d: got %v, want %v", i, have, want)
		}
	}

	if _, err := Unmarshal([]byte(`{"version":99,"model":{}}`)); err == nil {
		t.Error("future format version accepted")
	}
}
