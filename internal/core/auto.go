package core

import (
	"context"
	"errors"
	"fmt"

	"gef/internal/featsel"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/obs"
	"gef/internal/robust"
	"gef/internal/stats"
)

// AutoConfig controls the automatic component-count search of
// AutoExplain. It extends the paper, which leaves |F′| and |F″| to the
// analyst (§3.5): AutoExplain grows the explainer until the marginal
// fidelity gain falls below a tolerance — the elbow the paper reads off
// Fig. 7 by hand.
type AutoConfig struct {
	// Base carries all pipeline settings except NumUnivariate and
	// NumInteractions, which the search controls.
	Base Config
	// MaxUnivariate caps the spline search (default 10, or the number of
	// features used by the forest when smaller).
	MaxUnivariate int
	// MaxInteractions caps the tensor-term search (default 4).
	MaxInteractions int
	// Tolerance is the minimum relative RMSE improvement required to
	// accept another component (default 0.03 — the paper accepts 7
	// splines on Superconductivity because further terms add only a few
	// percent).
	Tolerance float64
}

func (c AutoConfig) withDefaults(f *forest.Forest) AutoConfig {
	if c.MaxUnivariate == 0 {
		c.MaxUnivariate = 10
	}
	if used := len(f.UsedFeatures()); c.MaxUnivariate > used {
		c.MaxUnivariate = used
	}
	if c.MaxInteractions == 0 {
		c.MaxInteractions = 4
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.03
	}
	return c
}

// AutoStep records one candidate configuration evaluated by AutoExplain.
type AutoStep struct {
	NumUnivariate   int
	NumInteractions int
	RMSE            float64
	Accepted        bool
}

// AutoExplain searches for the smallest explainer whose fidelity is
// within Tolerance of diminishing returns. All candidates are fitted on
// ONE synthetic dataset sampled over the maximal feature set, so their
// RMSEs are directly comparable (sampling per-candidate would change the
// variance of the target across candidates — the Fig. 7 comparability
// requirement). It adds splines in gain order while each improves
// held-out RMSE by at least Tolerance relatively, then interaction terms
// the same way, and returns the chosen explanation plus the full trace.
// Runs on the shared process-wide engine; use NewEngine for an isolated
// cache.
func AutoExplain(f *forest.Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return shared.AutoExplainCtx(context.Background(), f, cfg)
}

// AutoExplainCtx is AutoExplain with context propagation: the search
// opens one obs span per evaluated candidate, so traces show where the
// component search spends its time. Runs on the shared process-wide
// engine.
func AutoExplainCtx(ctx context.Context, f *forest.Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	return shared.AutoExplainCtx(ctx, f, cfg)
}

// AutoExplainCtx runs the component search through e's artifact cache.
// The search shares the stats/featsel/domains/sample/interactions
// artifacts with plain ExplainCtx calls over the same forest and base
// configuration, and every candidate fit reuses the engine's B-spline
// bases and penalty blocks — a warm engine skips straight to the
// candidate fits.
func (e *Engine) AutoExplainCtx(ctx context.Context, f *forest.Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	ex, steps, err := e.autoExplainCtx(ctx, f, cfg)
	if err != nil {
		obs.RecordError("core.auto_explain", err)
	}
	return ex, steps, err
}

func (e *Engine) autoExplainCtx(ctx context.Context, f *forest.Forest, cfg AutoConfig) (*Explanation, []AutoStep, error) {
	cfg = cfg.withDefaults(f)
	base := cfg.Base.withDefaults()
	if base.Family != FamilyGAM {
		return nil, nil, fmt.Errorf("gef: AutoExplain searches GAM structure; family %q is not supported: %w",
			base.Family, robust.ErrConfig)
	}
	ctx, root := obs.Start(ctx, "gef.auto_explain",
		obs.Int("max_univariate", cfg.MaxUnivariate),
		obs.Int("max_interactions", cfg.MaxInteractions),
		obs.F64("tolerance", cfg.Tolerance))
	defer root.End()
	if err := f.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gef: invalid forest: %w", err)
	}
	p := &pipeline{eng: e, f: f, fp: f.Fingerprint(), cfg: base}
	if err := p.selectFeatures(ctx, cfg.MaxUnivariate); err != nil {
		return nil, nil, err
	}
	if len(p.features) == 0 {
		return nil, nil, fmt.Errorf("gef: forest has no split nodes to explain")
	}

	// The domains stage walks the drop-feature ladder for degenerate
	// domains, so the search degrades like ExplainCtx instead of
	// aborting; any simplifications surface in Explanation.Degradations.
	if err := p.buildDomains(ctx); err != nil {
		return nil, nil, err
	}
	if err := p.buildSample(ctx); err != nil {
		return nil, nil, err
	}
	features := p.features
	train, test := p.train, p.test

	var pairs []featsel.Pair
	if cfg.MaxInteractions > 0 && len(features) >= 2 {
		var err error
		pairs, err = p.rankInteractions(ctx)
		if err != nil {
			return nil, nil, err
		}
	}

	// fit builds and fits the candidate with ns splines and ni tensor
	// terms (heredity: pairs restricted to the first ns features).
	h0, m0 := e.basis.Counters()
	fit := func(ns, ni int) (*gam.Model, []featsel.Pair, float64, error) {
		cctx, csp := obs.Start(ctx, "auto.candidate",
			obs.Int("splines", ns), obs.Int("interactions", ni))
		defer csp.End()
		sel := features[:ns]
		var selPairs []featsel.Pair
		inSel := make(map[int]bool, ns)
		for _, ft := range sel {
			inSel[ft] = true
		}
		for _, pr := range pairs {
			if len(selPairs) == ni {
				break
			}
			if inSel[pr.I] && inSel[pr.J] {
				selPairs = append(selPairs, pr)
			}
		}
		spec, err := buildSpec(f, p.stats.thresholds, sel, selPairs, base)
		if err != nil {
			return nil, nil, 0, err
		}
		m, err := gam.FitCache(cctx, spec, train.X, train.Y, base.GAM, e.basis)
		if err != nil {
			return nil, nil, 0, err
		}
		rmse := stats.RMSE(m.PredictBatch(test.X), test.Y)
		csp.Set(obs.F64("rmse", rmse))
		return m, selPairs, rmse, nil
	}
	defer func() {
		h1, m1 := e.basis.Counters()
		e.addStage("fit", h1-h0, m1-m0)
	}()

	var trace []AutoStep
	bestModel, bestPairs, bestRMSE, err := fit(1, 0)
	if err != nil {
		return nil, nil, robust.CtxErr(err)
	}
	ns, ni := 1, 0
	trace = append(trace, AutoStep{NumUnivariate: 1, RMSE: bestRMSE, Accepted: true})
	for ns < len(features) {
		m, sp, rmse, err := fit(ns+1, 0)
		if errors.Is(err, robust.ErrNumerical) {
			// A numerically unfittable candidate ends the search at the
			// last accepted model instead of aborting: growing further
			// would only make the system worse conditioned.
			root.Event("auto.stopped", obs.Str("reason", err.Error()),
				obs.Int("splines", ns+1))
			break
		}
		if err != nil {
			return nil, nil, robust.CtxErr(err)
		}
		improved := relImprovement(bestRMSE, rmse) >= cfg.Tolerance
		trace = append(trace, AutoStep{NumUnivariate: ns + 1, RMSE: rmse, Accepted: improved})
		if !improved {
			break
		}
		bestModel, bestPairs, bestRMSE, ns = m, sp, rmse, ns+1
	}
	for ni < cfg.MaxInteractions && ns >= 2 {
		m, sp, rmse, err := fit(ns, ni+1)
		if errors.Is(err, robust.ErrNumerical) {
			root.Event("auto.stopped", obs.Str("reason", err.Error()),
				obs.Int("splines", ns), obs.Int("interactions", ni+1))
			break
		}
		if err != nil {
			return nil, nil, robust.CtxErr(err)
		}
		if len(sp) < ni+1 {
			break // not enough candidate pairs within the selected features
		}
		improved := relImprovement(bestRMSE, rmse) >= cfg.Tolerance
		trace = append(trace, AutoStep{NumUnivariate: ns, NumInteractions: ni + 1, RMSE: rmse, Accepted: improved})
		if !improved {
			break
		}
		bestModel, bestPairs, bestRMSE, ni = m, sp, rmse, ni+1
	}

	chosen := base
	chosen.NumUnivariate = ns
	chosen.NumInteractions = ni
	ex := &Explanation{
		Family:       FamilyGAM,
		Surrogate:    &gamModel{m: bestModel},
		Model:        bestModel,
		Features:     append([]int(nil), features[:ns]...),
		Pairs:        bestPairs,
		Domains:      p.domains,
		Train:        train,
		Test:         test,
		Forest:       f,
		Config:       chosen,
		Degradations: p.degr,
	}
	pred := bestModel.PredictBatch(test.X)
	ex.Fidelity = Fidelity{RMSE: bestRMSE, R2: stats.R2(pred, test.Y)}
	return ex, trace, nil
}

// relImprovement returns the relative RMSE reduction from old to new
// (positive when new is better).
func relImprovement(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (old - new) / old
}
