package core

import (
	"bytes"
	"testing"

	"gef/internal/obs"
)

// TestExplainObservationIdentity checks the tentpole invariant of the
// observability layer: running the fully-instrumented pipeline with
// tracing disabled (the default) and with a sink installed produces a
// byte-identical model — instrumentation observes, never perturbs.
func TestExplainObservationIdentity(t *testing.T) {
	f := gprimeForest(t)
	cfg := quickCfg()

	// Baseline: no sink (the seed-equivalent configuration). Each run
	// gets a fresh engine so both execute the full pipeline — a shared
	// cache would serve the second run's stages as hits and elide the
	// inner stage spans this test asserts on.
	obs.SetSink(nil)
	base, err := NewEngine().Explain(f, cfg)
	if err != nil {
		t.Fatalf("baseline Explain: %v", err)
	}
	baseBytes, err := base.Model.Marshal(true)
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}

	// Instrumented: memory sink capturing every span.
	ms := obs.NewMemorySink()
	obs.SetSink(ms)
	defer obs.SetSink(nil)
	traced, err := NewEngine().Explain(f, cfg)
	if err != nil {
		t.Fatalf("traced Explain: %v", err)
	}
	tracedBytes, err := traced.Model.Marshal(true)
	if err != nil {
		t.Fatalf("marshal traced: %v", err)
	}

	if !bytes.Equal(baseBytes, tracedBytes) {
		t.Errorf("instrumented run produced a different model (%d vs %d bytes)",
			len(baseBytes), len(tracedBytes))
	}
	if base.Fidelity != traced.Fidelity {
		t.Errorf("fidelity differs: %+v vs %+v", base.Fidelity, traced.Fidelity)
	}
	if len(base.Features) != len(traced.Features) {
		t.Fatalf("|F'| differs: %d vs %d", len(base.Features), len(traced.Features))
	}
	for i := range base.Features {
		if base.Features[i] != traced.Features[i] {
			t.Errorf("feature[%d] differs: %d vs %d", i, base.Features[i], traced.Features[i])
		}
	}

	// The traced run must have emitted the stage spans ISSUE-level
	// acceptance cares about: the root, the GAM fit, and its per-λ GCV
	// children.
	seen := map[string]int{}
	for _, sp := range ms.Spans() {
		seen[sp.Name]++
	}
	for _, want := range []string{
		"gef.explain", "featsel.top_features", "sampling.build_domains",
		"sampling.generate", "gam.fit", "gam.gcv", "gef.fidelity",
		"engine.stats", "engine.featsel", "engine.domains",
		"engine.sample", "engine.fit",
	} {
		if seen[want] == 0 {
			t.Errorf("no %q span emitted (saw %v)", want, seen)
		}
	}
	if seen["gam.gcv"] < len(cfg.GAM.Lambdas) {
		t.Errorf("gam.gcv spans = %d, want ≥ %d (one per λ)",
			seen["gam.gcv"], len(cfg.GAM.Lambdas))
	}
}
