package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive definite n×n matrix
// A = Gᵀ G + n·I.
func randSPD(r *rand.Rand, n int) *Matrix {
	g := randMatrix(r, n, n)
	a := Mul(g.T(), g)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskySolveKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [6,5] → x = [1,1].
	a := NewMatrixFrom([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	x := ch.Solve([]float64{6, 5})
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("Solve = %v, want [1 1]", x)
	}
}

func TestCholeskyNotPositiveDefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a, 0); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3), 0); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

// Property: for random SPD systems, A·Solve(A, b) ≈ b.
func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		ch, err := NewCholesky(a, 0)
		if err != nil {
			return false
		}
		x := ch.Solve(b)
		res := MulVec(a, x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randSPD(r, 6)
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	inv := ch.Inverse()
	prod := Mul(a, inv)
	eye := NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		eye.Set(i, i, 1)
	}
	if d := MaxAbsDiff(prod, eye); d > 1e-9 {
		t.Errorf("A·A⁻¹ deviates from I by %g", d)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: log det is the sum of log of diagonal entries.
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 8}})
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	want := math.Log(16)
	if !almostEqual(ch.LogDet(), want, 1e-12) {
		t.Errorf("LogDet = %v, want %v", ch.LogDet(), want)
	}
}

func TestTraceSolve(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 7
	a := randSPD(r, n)
	b := randSPD(r, n)
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	got := ch.TraceSolve(b)
	want := Mul(ch.Inverse(), b).Trace()
	if !almostEqual(got, want, 1e-8*math.Abs(want)) {
		t.Errorf("TraceSolve = %v, want %v", got, want)
	}
}

func TestSolveMatrix(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 5
	a := randSPD(r, n)
	b := randMatrix(r, n, 3)
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	x := ch.SolveMatrix(b)
	if d := MaxAbsDiff(Mul(a, x), b); d > 1e-8 {
		t.Errorf("A·X deviates from B by %g", d)
	}
}

func TestFactorizeSPDWithSingularMatrix(t *testing.T) {
	// Rank-deficient PSD matrix (xxᵀ); jitter escalation must succeed.
	a := NewMatrix(3, 3)
	a.SymRankOneUpdate(1, []float64{1, 2, 3})
	a.SymmetrizeFromUpper()
	ch, err := FactorizeSPD(a)
	if err != nil {
		t.Fatalf("FactorizeSPD failed on PSD matrix: %v", err)
	}
	if ch.Size() != 3 {
		t.Errorf("Size = %d, want 3", ch.Size())
	}
}

func TestPackedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	a := randSPD(r, 9)
	ch, err := NewCholesky(a, 0)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	packed := ch.PackLower()
	if len(packed) != 9*10/2 {
		t.Fatalf("packed length %d, want 45", len(packed))
	}
	ch2, err := NewCholeskyFromPacked(9, packed)
	if err != nil {
		t.Fatalf("NewCholeskyFromPacked: %v", err)
	}
	b := make([]float64, 9)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x1 := ch.Solve(b)
	x2 := ch2.Solve(b)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solve differs after pack round trip")
		}
	}
	if ch.LogDet() != ch2.LogDet() {
		t.Error("LogDet differs after pack round trip")
	}
}

func TestPackedErrors(t *testing.T) {
	if _, err := NewCholeskyFromPacked(3, []float64{1, 2}); err == nil {
		t.Error("accepted wrong packed length")
	}
	if _, err := NewCholeskyFromPacked(2, []float64{1, 0, -1}); err == nil {
		t.Error("accepted non-positive diagonal")
	}
}

func TestFactorizeSPDFailsOnIndefinite(t *testing.T) {
	// Strongly indefinite matrix: even the jitter ladder must give up.
	a := NewMatrixFrom([][]float64{{-100, 0}, {0, -100}})
	if _, err := FactorizeSPD(a); err == nil {
		t.Error("accepted a negative-definite matrix")
	}
	if _, err := FactorizeSPD(NewMatrix(2, 3)); err == nil {
		t.Error("accepted a non-square matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 2}})
	x, err := SolveSPD(a, []float64{4, 6})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	if !almostEqual(x[0], 2, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Errorf("SolveSPD = %v, want [2 3]", x)
	}
}
