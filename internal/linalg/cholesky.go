package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n×n storage
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// Only the lower triangle (including the diagonal) of a is read.
// A small non-negative jitter can be supplied to stabilise nearly
// singular penalized systems; it is added to the diagonal.
func NewCholesky(a *Matrix, jitter float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.Data[i*n+j]
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// Solve solves A x = b and returns x.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic("linalg: dimension mismatch in Cholesky.Solve")
	}
	x := make([]float64, c.n)
	copy(x, b)
	c.SolveInPlace(x)
	return x
}

// SolveInPlace solves A x = b, overwriting b with x.
func (c *Cholesky) SolveInPlace(b []float64) {
	n := c.n
	l := c.l
	// Forward substitution: L y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l[i*n : i*n+i]
		for k, v := range row {
			sum -= v * b[k]
		}
		b[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * b[k]
		}
		b[i] = sum / l[i*n+i]
	}
}

// SolveMatrix solves A X = B column-by-column and returns X.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.n {
		panic("linalg: dimension mismatch in Cholesky.SolveMatrix")
	}
	x := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, c.n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		c.SolveInPlace(col)
		for i := 0; i < b.Rows; i++ {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// Inverse returns A⁻¹ as a dense matrix.
func (c *Cholesky) Inverse() *Matrix {
	inv := NewMatrix(c.n, c.n)
	e := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		c.SolveInPlace(e)
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, e[i])
		}
	}
	return inv
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i*c.n+i])
	}
	return 2 * s
}

// TraceSolve returns tr(A⁻¹ B) for a square matrix B of the same size.
// This is the workhorse of the GCV effective-degrees-of-freedom
// computation: edf = tr((XᵀX+λS)⁻¹ XᵀX).
func (c *Cholesky) TraceSolve(b *Matrix) float64 {
	if b.Rows != c.n || b.Cols != c.n {
		panic("linalg: dimension mismatch in TraceSolve")
	}
	col := make([]float64, c.n)
	var tr float64
	for j := 0; j < c.n; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.At(i, j)
		}
		c.SolveInPlace(col)
		tr += col[j]
	}
	return tr
}

// PackLower returns the lower-triangular factor in packed row-major form
// (n(n+1)/2 values), for serialization.
func (c *Cholesky) PackLower() []float64 {
	out := make([]float64, 0, c.n*(c.n+1)/2)
	for i := 0; i < c.n; i++ {
		out = append(out, c.l[i*c.n:i*c.n+i+1]...)
	}
	return out
}

// NewCholeskyFromPacked reconstructs a Cholesky from a packed lower
// triangle produced by PackLower.
func NewCholeskyFromPacked(n int, packed []float64) (*Cholesky, error) {
	if len(packed) != n*(n+1)/2 {
		return nil, fmt.Errorf("linalg: packed length %d for dimension %d (want %d)", len(packed), n, n*(n+1)/2)
	}
	l := make([]float64, n*n)
	k := 0
	for i := 0; i < n; i++ {
		copy(l[i*n:i*n+i+1], packed[k:k+i+1])
		k += i + 1
		if l[i*n+i] <= 0 || math.IsNaN(l[i*n+i]) {
			return nil, fmt.Errorf("linalg: packed factor has invalid diagonal at %d", i)
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// SolveSPD is a convenience wrapper: factorize a (with escalating jitter on
// failure) and solve a x = b. It returns an error only if the matrix stays
// numerically indefinite even after substantial regularization.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	ch, err := FactorizeSPD(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}

// FactorizeSPD attempts a Cholesky factorization with escalating diagonal
// jitter: 0, then scaled multiples of the mean diagonal. GAM penalized
// normal-equation matrices are positive semi-definite by construction but
// can be numerically singular when a basis column is empty; the jitter
// ridge makes the solve well defined without visibly biasing the fit.
func FactorizeSPD(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: FactorizeSPD of non-square matrix")
	}
	var meanDiag float64
	for i := 0; i < a.Rows; i++ {
		meanDiag += math.Abs(a.At(i, i))
	}
	if a.Rows > 0 {
		meanDiag /= float64(a.Rows)
	}
	if meanDiag == 0 {
		meanDiag = 1
	}
	jitters := []float64{0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2}
	var lastErr error
	for _, j := range jitters {
		ch, err := NewCholesky(a, j*meanDiag)
		if err == nil {
			return ch, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
