package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("got %d×%d, want 3×2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewMatrixFrom([][]float64{{1, 2}, {3}})
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dims")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSetAddAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 5 {
		t.Errorf("At(0,1) = %v, want 5", m.At(0, 1))
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %d×%d, want 3×2", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVecAndMulTVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, -1}
	got := MulVec(a, x)
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	y := []float64{1, 0, -1}
	got2 := MulTVec(a, y)
	want2 := []float64{-4, -4}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Errorf("MulTVec[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

// Property: (AB)ᵀ == Bᵀ Aᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(r, m, k)
		b := randMatrix(r, k, n)
		left := Mul(a, b).T()
		right := Mul(b.T(), a.T())
		return MaxAbsDiff(left, right) < 1e-12
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestSymRankOneUpdate(t *testing.T) {
	m := NewMatrix(3, 3)
	x := []float64{1, 2, 3}
	m.SymRankOneUpdate(2, x)
	// Upper triangle should hold 2*x xᵀ.
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			want := 2 * x[i] * x[j]
			if m.At(i, j) != want {
				t.Errorf("(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestSymSparseRankOneUpdateMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 8
	dense := NewMatrix(n, n)
	sparse := NewMatrix(n, n)
	for rep := 0; rep < 20; rep++ {
		// Random sparse vector with 3 nonzeros at increasing indices.
		idx := []int{r.Intn(3), 3 + r.Intn(2), 6 + r.Intn(2)}
		val := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		full := make([]float64, n)
		for k, i := range idx {
			full[i] = val[k]
		}
		w := r.Float64() + 0.5
		dense.SymRankOneUpdate(w, full)
		sparse.SymSparseRankOneUpdate(w, idx, val)
	}
	dense.SymmetrizeFromUpper()
	sparse.SymmetrizeFromUpper()
	if d := MaxAbsDiff(dense, sparse); d > 1e-12 {
		t.Errorf("sparse update deviates from dense by %g", d)
	}
}

func TestSymmetrizeFromUpper(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {0, 4, 5}, {0, 0, 6}})
	m.SymmetrizeFromUpper()
	if m.At(1, 0) != 2 || m.At(2, 0) != 3 || m.At(2, 1) != 5 {
		t.Errorf("symmetrize failed: %+v", m.Data)
	}
}

func TestTrace(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 9}, {9, 2}})
	if m.Trace() != 3 {
		t.Errorf("Trace = %v, want 3", m.Trace())
	}
}

func TestDotNormScaleAXPY(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %v, want 25", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %v, want 5", Norm2(a))
	}
	b := []float64{1, 1}
	AXPY(2, a, b)
	if b[0] != 7 || b[1] != 9 {
		t.Errorf("AXPY result %v, want [7 9]", b)
	}
	Scale(b, 0.5)
	if b[0] != 3.5 || b[1] != 4.5 {
		t.Errorf("Scale result %v", b)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{10, 20}, {30, 40}})
	a.AddScaled(0.1, b)
	if !almostEqual(a.At(0, 0), 2, 1e-12) || !almostEqual(a.At(1, 1), 8, 1e-12) {
		t.Errorf("AddScaled result %+v", a.Data)
	}
}

func TestClone(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone is not a deep copy")
	}
}
