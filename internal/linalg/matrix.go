// Package linalg provides the small dense linear-algebra kernel used by
// the GAM fitter and the statistics helpers: dense matrices, Cholesky
// factorization, triangular solves and a handful of BLAS-like updates.
//
// The package is deliberately minimal: everything GEF needs is symmetric
// positive (semi-)definite solves on matrices of a few hundred columns, so
// a straightforward row-major implementation with good cache behaviour is
// both sufficient and easy to audit.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have
// equal length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch in Mul: %d×%d by %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: dimension mismatch in MulVec: %d×%d by %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTVec returns aᵀ·x.
func MulTVec(a *Matrix, x []float64) []float64 {
	if a.Rows != len(x) {
		panic(fmt.Sprintf("linalg: dimension mismatch in MulTVec: %d×%d by %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// AddScaled computes m += alpha*other in place.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: dimension mismatch in AddScaled")
	}
	for i, v := range other.Data {
		m.Data[i] += alpha * v
	}
}

// SymRankOneUpdate performs m += w * x xᵀ for a symmetric accumulator.
// Only requires x to be the full row; updates the whole matrix (both
// triangles) so callers can use plain solves afterwards.
func (m *Matrix) SymRankOneUpdate(w float64, x []float64) {
	if m.Rows != m.Cols || m.Rows != len(x) {
		panic("linalg: dimension mismatch in SymRankOneUpdate")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		wxi := w * xi
		row := m.Data[i*n : (i+1)*n]
		for j := i; j < n; j++ {
			row[j] += wxi * x[j]
		}
	}
}

// SymSparseRankOneUpdate performs m += w * x xᵀ where x is given in sparse
// form as parallel (idx, val) slices. Only the upper triangle is written;
// call SymmetrizeFromUpper before solving.
func (m *Matrix) SymSparseRankOneUpdate(w float64, idx []int, val []float64) {
	n := m.Cols
	for a, ia := range idx {
		wva := w * val[a]
		if wva == 0 {
			continue
		}
		row := m.Data[ia*n : (ia+1)*n]
		for b := a; b < len(idx); b++ {
			ib := idx[b]
			if ib >= ia {
				row[ib] += wva * val[b]
			} else {
				m.Data[ib*n+ia] += wva * val[b]
			}
		}
	}
}

// SymmetrizeFromUpper copies the upper triangle into the lower triangle.
func (m *Matrix) SymmetrizeFromUpper() {
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Data[j*n+i] = m.Data[i*n+j]
		}
	}
}

// Trace returns the sum of the diagonal of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b; used by tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: dimension mismatch in MaxAbsDiff")
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dimension mismatch in Dot")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies every element of v by alpha, in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: dimension mismatch in AXPY")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
