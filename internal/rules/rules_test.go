package rules

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/par"
)

// forestAndData is the fixture shape: a trained forest plus samples
// relabeled with its own predictions — what core's D* split looks like.
type forestAndData struct {
	f           *forest.Forest
	train, test *dataset.Dataset
}

func fixture(t *testing.T) (*forestAndData, Config) {
	t.Helper()
	ds := dataset.GPrime(800, 0.05, 11)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 30, NumLeaves: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	train := &dataset.Dataset{X: ds.X[:600], Y: f.PredictBatch(ds.X[:600])}
	test := &dataset.Dataset{X: ds.X[600:], Y: f.PredictBatch(ds.X[600:])}
	return &forestAndData{f: f, train: train, test: test}, Config{}
}

func TestReducedPredictionWithinTolerance(t *testing.T) {
	fx, cfg := fixture(t)
	m, err := Fit(context.Background(), fx.f, fx.train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.MeanKeptTrees >= float64(s.NumTrees) {
		t.Fatalf("reduction kept all %d trees on average (%.1f); nothing was reduced", s.NumTrees, s.MeanKeptTrees)
	}
	pred, err := m.PredictBatch(context.Background(), fx.test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pred {
		if d := math.Abs(p - fx.test.Y[i]); d > s.AbsTolerance+1e-12 {
			t.Fatalf("row %d: reduced prediction off by %g > tolerance %g", i, d, s.AbsTolerance)
		}
	}
}

func TestExplainRuleCoversInstance(t *testing.T) {
	fx, cfg := fixture(t)
	m, err := Fit(context.Background(), fx.f, fx.train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		x := fx.test.X[i]
		r, err := m.Explain(x)
		if err != nil {
			t.Fatal(err)
		}
		if r.KeptTrees > r.TotalTrees || r.TotalTrees != len(fx.f.Trees) {
			t.Fatalf("row %d: kept %d of %d trees", i, r.KeptTrees, r.TotalTrees)
		}
		if d := math.Abs(r.Prediction - r.ForestPrediction); d > m.Summary().AbsTolerance+1e-12 {
			t.Fatalf("row %d: rule prediction off by %g", i, d)
		}
		for _, term := range r.Terms {
			v := x[term.Feature]
			if !(v > term.Lo && v <= term.Hi) {
				t.Fatalf("row %d: x[%d]=%g outside rule range (%g, %g]", i, term.Feature, v, term.Lo, term.Hi)
			}
		}
		if r.KeptTrees > 0 && len(r.Terms) == 0 {
			t.Fatalf("row %d: %d kept trees produced an empty rule", i, r.KeptTrees)
		}
		if r.String() == "" {
			t.Fatalf("row %d: empty rule rendering", i)
		}
	}
}

func TestPredictBatchDeterministicAcrossWorkers(t *testing.T) {
	fx, cfg := fixture(t)
	m, err := Fit(context.Background(), fx.f, fx.train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	for _, w := range []int{1, 2, 4} {
		par.SetWorkers(w)
		got, err := m.PredictBatch(context.Background(), fx.test.X)
		if err != nil {
			par.SetWorkers(0)
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range got {
			//lint:ignore floatcmp bitwise determinism is the contract under test
			if got[i] != ref[i] {
				par.SetWorkers(0)
				t.Fatalf("workers=%d row %d: %v != %v", w, i, got[i], ref[i])
			}
		}
	}
	par.SetWorkers(0)
}

func TestSummaryRoundTripAndStub(t *testing.T) {
	fx, cfg := fixture(t)
	m, err := Fit(context.Background(), fx.f, fx.train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatal(err)
	}
	if s != m.Summary() {
		t.Fatalf("summary round trip: %+v != %+v", s, m.Summary())
	}
	stub := FromSummary(s)
	if stub.Fitted() {
		t.Fatal("summary-only model claims to be fitted")
	}
	if !math.IsNaN(stub.Predict(fx.test.X[0])) {
		t.Fatal("summary-only model should predict NaN")
	}
	if _, err := stub.Explain(fx.test.X[0]); err == nil {
		t.Fatal("summary-only model should refuse to extract rules")
	}
}
