// Package rules implements the conclusive-local-rule surrogate family:
// per-prediction reduced conjunctive rules in the spirit of LionForests
// ("Conclusive Local Interpretation Rules for Random Forests", see
// PAPERS.md), adapted to additive gradient-boosted forests. For one
// instance the forest's prediction is re-expressed as a conjunction of
// feature ranges — the intersection of the root-to-leaf path constraints
// of a *reduced* tree set, the smallest prefix (ordered by how far each
// tree's leaf deviates from that tree's mean response) whose prediction
// stays within a tolerance of the full forest. Dropped trees contribute
// their mean, so the reduced prediction is a faithful, bounded
// approximation rather than a truncation.
//
// Unlike the GAM and smoother families the fitted artifact is tiny (a
// compiled forest view plus one tolerance); all per-instance work runs
// at explanation time through the flat-forest kernels and internal/par,
// with the usual bitwise-determinism contract (fixed traversal and
// reduction order at any worker count).
package rules

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
)

// Config controls rule reduction.
type Config struct {
	// Tolerance is the maximum deviation of the reduced-forest
	// prediction from the full forest, as a fraction of the forest's
	// output spread on the fitting sample (default 0.02). Smaller keeps
	// more trees and longer rules.
	Tolerance float64
	// SummarySample bounds the rows used to estimate the mean kept-tree
	// fraction recorded in the fitted summary (default 256).
	SummarySample int
}

// WithDefaults fills zero knobs with the package defaults. Idempotent;
// exported so the engine can derive cache keys from the effective
// configuration rather than the raw one.
func (c Config) WithDefaults() Config {
	if c.Tolerance == 0 {
		c.Tolerance = 0.02
	}
	if c.SummarySample == 0 {
		c.SummarySample = 256
	}
	return c
}

// Summary is the serializable description of a fitted rule model: the
// structural knobs plus the reduction statistics measured at fit time.
// It is all a reloaded explanation retains — predicting again needs the
// source forest (like EvaluateOn on a reloaded GAM explanation).
type Summary struct {
	// Tolerance echoes Config.Tolerance (relative).
	Tolerance float64 `json:"tolerance"`
	// AbsTolerance is the resolved absolute tolerance on the response
	// scale (Tolerance × output spread of the fitting sample).
	AbsTolerance float64 `json:"abs_tolerance"`
	// NumTrees is the full forest size rules reduce from.
	NumTrees int `json:"num_trees"`
	// MeanKeptTrees is the average number of trees a rule keeps,
	// measured over SampleRows fitting rows.
	MeanKeptTrees float64 `json:"mean_kept_trees"`
	// SampleRows is the number of rows behind MeanKeptTrees.
	SampleRows int `json:"sample_rows"`
}

// Model is a fitted rule surrogate. A model fitted by Fit predicts and
// extracts rules; a model reloaded via FromSummary only reports its
// Summary (Predict returns NaN — the forest is not serialized).
type Model struct {
	f       *forest.Forest
	fl      *forest.Flat
	summary Summary
}

// Term is one conjunct of a rule: a half-open or bounded range on a
// feature. Lo is -Inf and Hi is +Inf when the side is unconstrained.
type Term struct {
	Feature int
	Lo, Hi  float64
}

// Rule is the reduced conjunctive explanation of one prediction.
type Rule struct {
	// Terms are the intersected path constraints of the kept trees, in
	// feature order. x satisfies Lo < x[Feature] ≤ Hi for every term.
	Terms []Term
	// Prediction is the reduced-forest prediction (response scale); it
	// deviates from the full forest by at most the fitted tolerance.
	Prediction float64
	// ForestPrediction is the full forest's prediction for cross-checking.
	ForestPrediction float64
	// KeptTrees of TotalTrees survived the reduction.
	KeptTrees, TotalTrees int
}

// Fit prepares the rule surrogate over the shared D* artifacts: it
// compiles the forest once, resolves the relative tolerance against the
// output spread of train's labels (the forest's own responses), and
// measures the mean reduction on a bounded sample of train rows.
func Fit(ctx context.Context, f *forest.Forest, train *dataset.Dataset, cfg Config) (*Model, error) {
	cfg = cfg.WithDefaults()
	if train == nil || len(train.X) == 0 {
		return nil, fmt.Errorf("rules: empty fitting sample: %w", robust.ErrDegenerate)
	}
	_, sp := obs.Start(ctx, "rules.fit",
		obs.Int("trees", len(f.Trees)), obs.Int("train_rows", len(train.X)))
	defer sp.End()

	lo, hi := train.Y[0], train.Y[0]
	for _, y := range train.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	m := &Model{
		f:  f,
		fl: forest.Compiled(f),
		summary: Summary{
			Tolerance:    cfg.Tolerance,
			AbsTolerance: math.Max(cfg.Tolerance*(hi-lo), 1e-12),
			NumTrees:     len(f.Trees),
		},
	}

	// Reduction statistics on a bounded prefix of train, parallelized
	// per row (each row's reduction is independent, so chunked execution
	// is bitwise identical to serial).
	n := min(cfg.SummarySample, len(train.X))
	kept := make([]int, n)
	if err := par.For(ctx, n, 0, func(_, lo, hi int) {
		red := m.newReducer()
		for i := lo; i < hi; i++ {
			_, kept[i] = red.reduce(train.X[i])
		}
	}); err != nil {
		return nil, robust.CtxErr(err)
	}
	total := 0
	for _, k := range kept {
		total += k
	}
	m.summary.SampleRows = n
	m.summary.MeanKeptTrees = float64(total) / float64(n)
	sp.Set(obs.F64("mean_kept_trees", m.summary.MeanKeptTrees),
		obs.F64("abs_tolerance", m.summary.AbsTolerance))
	return m, nil
}

// FromSummary reconstructs the serialized view of a rule model. The
// result reports its Summary; Predict returns NaN and Explain returns
// an error, because the source forest is not part of the payload.
func FromSummary(s Summary) *Model { return &Model{summary: s} }

// Summary returns the fit-time reduction statistics.
func (m *Model) Summary() Summary { return m.summary }

// Fitted reports whether the model carries its forest (false after
// FromSummary) and can therefore predict and extract rules.
func (m *Model) Fitted() bool { return m.fl != nil }

// Predict returns the reduced-forest prediction for x on the response
// scale — the value the instance's rule concludes with. On a reloaded
// (summary-only) model it returns NaN.
func (m *Model) Predict(x []float64) float64 {
	if !m.Fitted() {
		return math.NaN()
	}
	pred, _ := m.newReducer().reduce(x)
	return pred
}

// PredictBatch evaluates the reduced prediction for every row,
// parallelized over rows with the bitwise-determinism contract.
func (m *Model) PredictBatch(ctx context.Context, xs [][]float64) ([]float64, error) {
	out := make([]float64, len(xs))
	if !m.Fitted() {
		for i := range out {
			out[i] = math.NaN()
		}
		return out, nil
	}
	if err := par.For(ctx, len(xs), 0, func(_, lo, hi int) {
		red := m.newReducer()
		for i := lo; i < hi; i++ {
			out[i], _ = red.reduce(xs[i])
		}
	}); err != nil {
		return nil, robust.CtxErr(err)
	}
	return out, nil
}

// Explain extracts the reduced conjunctive rule for x.
func (m *Model) Explain(x []float64) (*Rule, error) {
	if !m.Fitted() {
		return nil, fmt.Errorf("rules: model was reloaded without its forest; re-fit to extract rules")
	}
	red := m.newReducer()
	pred, k := red.reduce(x)
	r := &Rule{
		Prediction:       pred,
		ForestPrediction: m.f.Predict(x),
		KeptTrees:        k,
		TotalTrees:       m.fl.NumTrees,
	}

	// Intersect the root-to-leaf path constraints of the kept trees into
	// per-feature (lo, hi] ranges, mirroring the flat traversal exactly
	// (x ≤ threshold goes left, so NaN falls right like the kernels).
	los := map[int]float64{}
	his := map[int]float64{}
	for _, t := range red.order[:k] {
		i := m.fl.TreeRoot(t)
		for !m.fl.IsLeaf(i) {
			j := int(m.fl.Feature(i))
			thr := m.fl.Threshold(i)
			if x[j] <= thr {
				if h, ok := his[j]; !ok || thr < h {
					his[j] = thr
				}
				if _, ok := los[j]; !ok {
					los[j] = math.Inf(-1)
				}
				i = m.fl.Left(i)
			} else {
				if l, ok := los[j]; !ok || thr > l {
					los[j] = thr
				}
				if _, ok := his[j]; !ok {
					his[j] = math.Inf(1)
				}
				i = m.fl.Right(i)
			}
		}
	}
	feats := make([]int, 0, len(los))
	for j := range los {
		feats = append(feats, j)
	}
	sort.Ints(feats)
	for _, j := range feats {
		r.Terms = append(r.Terms, Term{Feature: j, Lo: los[j], Hi: his[j]})
	}
	return r, nil
}

// String renders the rule as "f1 > 0.2 AND f3 ∈ (0.1, 0.8] → 4.21".
func (r *Rule) String() string {
	var b strings.Builder
	if len(r.Terms) == 0 {
		b.WriteString("always")
	}
	for i, t := range r.Terms {
		if i > 0 {
			b.WriteString(" AND ")
		}
		switch {
		case math.IsInf(t.Lo, -1) && math.IsInf(t.Hi, 1):
			fmt.Fprintf(&b, "f%d ∈ ℝ", t.Feature)
		case math.IsInf(t.Lo, -1):
			fmt.Fprintf(&b, "f%d ≤ %.4g", t.Feature, t.Hi)
		case math.IsInf(t.Hi, 1):
			fmt.Fprintf(&b, "f%d > %.4g", t.Feature, t.Lo)
		default:
			fmt.Fprintf(&b, "f%d ∈ (%.4g, %.4g]", t.Feature, t.Lo, t.Hi)
		}
	}
	fmt.Fprintf(&b, " → %.4g (%d/%d trees)", r.Prediction, r.KeptTrees, r.TotalTrees)
	return b.String()
}

// reducer holds per-goroutine scratch for the per-instance reduction so
// parallel rows never share state.
type reducer struct {
	fl       *forest.Flat
	diffs    []float64 // leaf value − tree mean, per tree
	order    []int     // tree indices by |diff| descending
	suffixes []float64 // dropped-diff suffix sums, len trees+1
	absTol   float64
}

func (m *Model) newReducer() *reducer {
	nt := m.fl.NumTrees
	return &reducer{
		fl:       m.fl,
		diffs:    make([]float64, nt),
		order:    make([]int, nt),
		suffixes: make([]float64, nt+1),
		absTol:   m.summary.AbsTolerance,
	}
}

// reduce computes the reduced prediction for x: trees are ordered by how
// far their leaf deviates from the tree mean, and the shortest prefix
// whose prediction (kept leaves + dropped trees' means) stays within the
// absolute tolerance of the full forest wins. Returns the reduced
// response-scale prediction and the kept-tree count. The suffix scan is
// a fixed serial order, so results are bitwise identical at any worker
// count.
func (red *reducer) reduce(x []float64) (pred float64, kept int) {
	fl := red.fl
	nt := fl.NumTrees
	fullRaw := fl.BaseScore
	for t := 0; t < nt; t++ {
		v := fl.Value(fl.Leaf(t, x))
		fullRaw += v
		red.diffs[t] = v - fl.TreeMean(t)
		red.order[t] = t
	}
	d := red.diffs
	sort.Slice(red.order, func(a, b int) bool {
		da, db := math.Abs(d[red.order[a]]), math.Abs(d[red.order[b]])
		//lint:ignore floatcmp equal magnitudes fall through to the index tie-break, keeping the order total and deterministic
		if da != db {
			return da > db
		}
		return red.order[a] < red.order[b]
	})
	full := red.response(fullRaw)
	// suffixes[k] = Σ diffs of the dropped trees when keeping order[:k];
	// walking k upward finds the minimal prefix within tolerance.
	suffix := 0.0
	for k := nt - 1; k >= 0; k-- {
		suffix += d[red.order[k]]
		red.suffixes[k] = suffix
	}
	red.suffixes[nt] = 0
	for k := 0; k <= nt; k++ {
		p := red.response(fullRaw - red.suffixes[k])
		if math.Abs(p-full) <= red.absTol {
			return p, k
		}
	}
	return full, nt // unreachable: k = nt drops nothing
}

// response maps a raw additive score to the forest's response scale.
func (red *reducer) response(raw float64) float64 {
	if red.fl.Objective == forest.BinaryLogistic {
		return forest.Sigmoid(raw)
	}
	return raw
}
