// Package featsel implements §3.2 and §3.4 of the paper: selecting the
// univariate components F′ by accumulated split gain, and ranking
// candidate feature interactions F″ with four strategies of increasing
// cost — Pair-Gain, Count-Path, Gain-Path and H-Stat.
package featsel

import (
	"context"
	"fmt"
	"sort"

	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/pdp"
)

// TopFeatures returns the k features with the largest accumulated loss
// reduction across the forest's split nodes, in decreasing importance
// order (ties broken by feature index). If fewer than k features occur in
// the forest, all occurring features are returned.
func TopFeatures(f *forest.Forest, k int) []int {
	return TopFeaturesRanked(f.GainImportance(), f.UsedFeatures(), k)
}

// TopFeaturesRanked is TopFeatures over precomputed forest statistics:
// imp is the per-feature gain importance (forest.GainImportance) and used
// the occurring feature set (forest.UsedFeatures). The engine caches both
// per forest fingerprint and reuses them across Explain calls, so the
// ranking must not walk the forest again. The inputs are not mutated.
func TopFeaturesRanked(imp []float64, used []int, k int) []int {
	order := append([]int(nil), used...)
	sort.SliceStable(order, func(a, b int) bool {
		//lint:ignore floatcmp exact tie-break in a sort comparator keeps the ordering total and deterministic
		if imp[order[a]] != imp[order[b]] {
			return imp[order[a]] > imp[order[b]]
		}
		return order[a] < order[b]
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k:k]
}

// InteractionStrategy identifies one of the paper's four pair-ranking
// heuristics.
type InteractionStrategy string

const (
	// PairGain scores a pair as the sum of the two features' univariate
	// gains — the paper's cheapest baseline.
	PairGain InteractionStrategy = "pair-gain"
	// CountPath counts, over all trees, ancestor–descendant node pairs
	// whose features are the pair (i.e. decision paths containing both).
	CountPath InteractionStrategy = "count-path"
	// GainPath is CountPath weighted by the minimum of the two nodes'
	// gains.
	GainPath InteractionStrategy = "gain-path"
	// HStat ranks pairs by Friedman's H-statistic computed on a data
	// sample — the most accurate and most expensive strategy.
	HStat InteractionStrategy = "h-stat"
)

// InteractionStrategies lists all strategies in the paper's cost order.
var InteractionStrategies = []InteractionStrategy{PairGain, CountPath, GainPath, HStat}

// Pair is a scored unordered feature pair with I < J.
type Pair struct {
	I, J  int
	Score float64
}

// key normalizes an unordered pair.
func key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// RankInteractions scores every unordered pair of the selected features
// (the heredity principle: only main-effect features are candidates) and
// returns them sorted by decreasing score, ties broken lexicographically.
// The sample argument is required only by HStat, which evaluates partial
// dependence over it; other strategies ignore it.
func RankInteractions(f *forest.Forest, selected []int, strategy InteractionStrategy, sample [][]float64) ([]Pair, error) {
	return RankInteractionsCtx(context.Background(), f, selected, strategy, sample)
}

// Metrics instruments (hoisted; see internal/obs). Pairs scored are
// labeled per strategy: featsel.pairs_scored{strategy="..."}.
var mPairsScored = obs.Metrics().CounterVec("featsel.pairs_scored", "strategy")

// RankInteractionsCtx is RankInteractions under an obs span; the number
// of scored pairs is counted per strategy in
// featsel.pairs_scored{strategy="..."} (H-Stat's forest evaluations are
// counted separately by internal/pdp).
func RankInteractionsCtx(ctx context.Context, f *forest.Forest, selected []int, strategy InteractionStrategy, sample [][]float64) ([]Pair, error) {
	_, sp := obs.Start(ctx, "featsel.rank_interactions",
		obs.Str("strategy", string(strategy)),
		obs.Int("selected", len(selected)),
		obs.Int("sample", len(sample)))
	defer sp.End()
	pairs, err := rankInteractions(f, selected, strategy, sample)
	if err != nil {
		return nil, err
	}
	mPairsScored.With(string(strategy)).Add(int64(len(pairs)))
	sp.Set(obs.Int("pairs", len(pairs)))
	return pairs, nil
}

func rankInteractions(f *forest.Forest, selected []int, strategy InteractionStrategy, sample [][]float64) ([]Pair, error) {
	if len(selected) < 2 {
		return nil, fmt.Errorf("featsel: need ≥ 2 selected features, got %d", len(selected))
	}
	inSel := make(map[int]bool, len(selected))
	for _, s := range selected {
		inSel[s] = true
	}
	scores := make(map[[2]int]float64)
	switch strategy {
	case PairGain:
		imp := f.GainImportance()
		forEachPair(selected, func(a, b int) {
			scores[key(a, b)] = imp[a] + imp[b]
		})
	case CountPath:
		accumulatePathScores(f, inSel, scores, func(gainAncestor, gainDescendant float64) float64 { return 1 })
	case GainPath:
		accumulatePathScores(f, inSel, scores, func(gainAncestor, gainDescendant float64) float64 {
			if gainAncestor < gainDescendant {
				return gainAncestor
			}
			return gainDescendant
		})
	case HStat:
		if len(sample) == 0 {
			return nil, fmt.Errorf("featsel: H-Stat requires a non-empty sample")
		}
		forEachPair(selected, func(a, b int) {
			scores[key(a, b)] = pdp.HStatistic(f, sample, a, b)
		})
	default:
		return nil, fmt.Errorf("featsel: unknown interaction strategy %q", strategy)
	}

	var pairs []Pair
	forEachPair(selected, func(a, b int) {
		k := key(a, b)
		pairs = append(pairs, Pair{I: k[0], J: k[1], Score: scores[k]})
	})
	sort.SliceStable(pairs, func(x, y int) bool {
		//lint:ignore floatcmp exact tie-break in a sort comparator keeps the ordering total and deterministic
		if pairs[x].Score != pairs[y].Score {
			return pairs[x].Score > pairs[y].Score
		}
		if pairs[x].I != pairs[y].I {
			return pairs[x].I < pairs[y].I
		}
		return pairs[x].J < pairs[y].J
	})
	return pairs, nil
}

// TopPairs returns the k highest-ranked interactions.
func TopPairs(f *forest.Forest, selected []int, strategy InteractionStrategy, sample [][]float64, k int) ([]Pair, error) {
	return TopPairsCtx(context.Background(), f, selected, strategy, sample, k)
}

// TopPairsCtx is TopPairs with context propagation.
func TopPairsCtx(ctx context.Context, f *forest.Forest, selected []int, strategy InteractionStrategy, sample [][]float64, k int) ([]Pair, error) {
	pairs, err := RankInteractionsCtx(ctx, f, selected, strategy, sample)
	if err != nil {
		return nil, err
	}
	if k > len(pairs) {
		k = len(pairs)
	}
	return pairs[:k], nil
}

func forEachPair(selected []int, fn func(a, b int)) {
	for i := 0; i < len(selected); i++ {
		for j := i + 1; j < len(selected); j++ {
			fn(selected[i], selected[j])
		}
	}
}

// accumulatePathScores walks every tree with an explicit ancestor stack:
// for each internal node d and each ancestor a on its path, the unordered
// feature pair (f_a, f_d) — when the features differ and both are
// selected — receives weight(gain_a, gain_d). This realizes the paper's
// recursive Count-Path/Gain-Path definition (§3.4).
func accumulatePathScores(f *forest.Forest, inSel map[int]bool, scores map[[2]int]float64, weight func(ga, gd float64) float64) {
	type stackEntry struct {
		feature int
		gain    float64
	}
	for ti := range f.Trees {
		t := &f.Trees[ti]
		var stack []stackEntry
		var walk func(i int)
		walk = func(i int) {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				return
			}
			if inSel[n.Feature] {
				for _, a := range stack {
					if a.feature != n.Feature && inSel[a.feature] {
						scores[key(a.feature, n.Feature)] += weight(a.gain, n.Gain)
					}
				}
			}
			stack = append(stack, stackEntry{feature: n.Feature, gain: n.Gain})
			walk(n.Left)
			walk(n.Right)
			stack = stack[:len(stack)-1]
		}
		walk(0)
	}
}
