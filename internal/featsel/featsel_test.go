package featsel

import (
	"math/rand"
	"testing"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
	"gef/internal/stats"
)

func TestTopFeaturesOrdersByGain(t *testing.T) {
	f := &forest.Forest{NumFeatures: 3, Objective: forest.Regression}
	// Feature 2 has total gain 10, feature 0 has 4, feature 1 unused.
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 2, Threshold: 0.5, Left: 1, Right: 2, Gain: 10, Cover: 100},
		{Feature: 0, Threshold: 0.5, Left: 3, Right: 4, Gain: 4, Cover: 50},
		{Left: -1, Right: -1, Value: 1, Cover: 50},
		{Left: -1, Right: -1, Value: 0, Cover: 25},
		{Left: -1, Right: -1, Value: 2, Cover: 25},
	}}}
	got := TopFeatures(f, 2)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("TopFeatures = %v, want [2 0]", got)
	}
	// Asking for more than available returns only used features.
	if got := TopFeatures(f, 10); len(got) != 2 {
		t.Errorf("TopFeatures(10) = %v, want 2 features", got)
	}
}

// trainOn builds a forest over a synthetic target.
func trainOn(t *testing.T, d *dataset.Dataset, trees int) *forest.Forest {
	t.Helper()
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: trees, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return f
}

func TestTopFeaturesOnTrainedForest(t *testing.T) {
	// Target uses only features 0 and 3 of 5; they must rank first.
	rng := rand.New(rand.NewSource(7))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < 2000; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.Float64()
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, 3*row[0]+2*row[3])
	}
	f := trainOn(t, d, 50)
	top := TopFeatures(f, 2)
	if !((top[0] == 0 && top[1] == 3) || (top[0] == 3 && top[1] == 0)) {
		t.Errorf("TopFeatures = %v, want {0, 3}", top)
	}
}

func TestRankInteractionsPairGain(t *testing.T) {
	f := &forest.Forest{NumFeatures: 3, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Feature: 2, Threshold: 0.5, Left: 5, Right: 6, Gain: 1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}}
	pairs, err := RankInteractions(f, []int{0, 1, 2}, PairGain, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	// Scores: (0,1)=8, (0,2)=6, (1,2)=4.
	if pairs[0].I != 0 || pairs[0].J != 1 || pairs[0].Score != 8 {
		t.Errorf("top pair = %+v, want (0,1,8)", pairs[0])
	}
	if pairs[2].Score != 4 {
		t.Errorf("last pair = %+v, want score 4", pairs[2])
	}
}

func TestCountPathAncestorDescendant(t *testing.T) {
	// Tree: root f0, left child f1 (with two leaf children), right leaf.
	// Paths containing both features: exactly the f0→f1 pair once.
	f := &forest.Forest{NumFeatures: 2, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}}
	pairs, err := RankInteractions(f, []int{0, 1}, CountPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if pairs[0].Score != 1 {
		t.Errorf("CountPath score = %v, want 1", pairs[0].Score)
	}
	// Gain-Path: min(5, 3) = 3.
	pairs, err = RankInteractions(f, []int{0, 1}, GainPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if pairs[0].Score != 3 {
		t.Errorf("GainPath score = %v, want 3", pairs[0].Score)
	}
}

func TestCountPathIgnoresSameFeaturePairs(t *testing.T) {
	// Chain of two f0 nodes: no cross-feature pair exists.
	f := &forest.Forest{NumFeatures: 2, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 0, Threshold: 0.2, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}}
	pairs, err := RankInteractions(f, []int{0, 1}, CountPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if pairs[0].Score != 0 {
		t.Errorf("same-feature chain scored %v, want 0", pairs[0].Score)
	}
}

func TestCountPathDeepTree(t *testing.T) {
	// Chain f0 → f1 → f2: pairs (0,1), (0,2), (1,2) each appear once.
	f := &forest.Forest{NumFeatures: 3, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Feature: 2, Threshold: 0.5, Left: 5, Right: 6, Gain: 1, Cover: 25},
		{Left: -1, Right: -1, Cover: 25},
		{Left: -1, Right: -1, Cover: 12}, {Left: -1, Right: -1, Cover: 13},
	}}}
	pairs, err := RankInteractions(f, []int{0, 1, 2}, CountPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	for _, p := range pairs {
		if p.Score != 1 {
			t.Errorf("pair (%d,%d) score = %v, want 1", p.I, p.J, p.Score)
		}
	}
	// Gain-Path on the same chain: (0,1)=3, (0,2)=1, (1,2)=1.
	gp, _ := RankInteractions(f, []int{0, 1, 2}, GainPath, nil)
	if gp[0].I != 0 || gp[0].J != 1 || gp[0].Score != 3 {
		t.Errorf("GainPath top = %+v, want (0,1,3)", gp[0])
	}
}

func TestPathStrategiesSumAcrossTrees(t *testing.T) {
	tree := forest.Tree{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}
	f := &forest.Forest{NumFeatures: 2, Objective: forest.Regression, Trees: []forest.Tree{tree, tree, tree}}
	pairs, _ := RankInteractions(f, []int{0, 1}, CountPath, nil)
	if pairs[0].Score != 3 {
		t.Errorf("score across 3 trees = %v, want 3", pairs[0].Score)
	}
}

func TestRankInteractionsHeredity(t *testing.T) {
	// Interaction involving a non-selected feature must not appear.
	f := &forest.Forest{NumFeatures: 3, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 2, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}}
	pairs, err := RankInteractions(f, []int{0, 1}, CountPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 1 {
		t.Fatalf("pairs = %v, want only (0,1)", pairs)
	}
	if pairs[0].Score != 0 {
		t.Errorf("pair with excluded feature scored %v, want 0", pairs[0].Score)
	}
}

func TestRankInteractionsErrors(t *testing.T) {
	f := &forest.Forest{NumFeatures: 2, Objective: forest.Regression}
	if _, err := RankInteractions(f, []int{0}, PairGain, nil); err == nil {
		t.Error("accepted a single selected feature")
	}
	if _, err := RankInteractions(f, []int{0, 1}, "bogus", nil); err == nil {
		t.Error("accepted unknown strategy")
	}
	if _, err := RankInteractions(f, []int{0, 1}, HStat, nil); err == nil {
		t.Error("H-Stat accepted empty sample")
	}
}

func TestTopPairs(t *testing.T) {
	f := &forest.Forest{NumFeatures: 3, Objective: forest.Regression}
	f.Trees = []forest.Tree{{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 5, Cover: 100},
		{Feature: 1, Threshold: 0.5, Left: 3, Right: 4, Gain: 3, Cover: 50},
		{Left: -1, Right: -1, Cover: 50},
		{Left: -1, Right: -1, Cover: 25}, {Left: -1, Right: -1, Cover: 25},
	}}}
	pairs, err := TopPairs(f, []int{0, 1, 2}, PairGain, nil, 2)
	if err != nil {
		t.Fatalf("TopPairs: %v", err)
	}
	if len(pairs) != 2 {
		t.Errorf("got %d pairs, want 2", len(pairs))
	}
	// Requesting more than exist returns all.
	pairs, _ = TopPairs(f, []int{0, 1, 2}, PairGain, nil, 99)
	if len(pairs) != 3 {
		t.Errorf("got %d pairs, want 3", len(pairs))
	}
}

// End-to-end: with strong product interactions injected into an additive
// base, Gain-Path and Count-Path must rank the true pairs clearly above
// chance (AP for 2 relevant of 10 under random ranking ≈ 0.2–0.3).
func TestPathStrategiesDetectStrongInteractions(t *testing.T) {
	truth := [][2]int{{0, 1}, {2, 3}}
	rng := rand.New(rand.NewSource(11))
	d := &dataset.Dataset{Task: dataset.Regression}
	for i := 0; i < 4000; i++ {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.Float64()
		}
		y := row[0] + row[1] + row[2] + row[3] + row[4] +
			6*(row[0]-0.5)*(row[1]-0.5) +
			6*(row[2]-0.5)*(row[3]-0.5) +
			0.1*rng.NormFloat64()
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
	}
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 150, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	for _, s := range []InteractionStrategy{CountPath, GainPath} {
		pairs, err := RankInteractions(f, []int{0, 1, 2, 3, 4}, s, nil)
		if err != nil {
			t.Fatalf("RankInteractions(%s): %v", s, err)
		}
		ap := averagePrecisionOf(pairs, truth)
		if ap < 0.7 {
			t.Errorf("%s AP = %v, want ≥ 0.7 on strong interactions", s, ap)
		}
	}
}

// On the paper's own (deliberately weak) h-bump interactions, Gain-Path
// should still score at or above the random-ranking baseline, matching the
// modest APs of Table 1.
func TestGainPathOnPaperInteractions(t *testing.T) {
	truth := [][2]int{{0, 1}, {2, 3}, {0, 4}}
	d := dataset.GDoublePrime(4000, 0.1, 11, truth)
	f, err := gbdt.Train(d, gbdt.Params{NumTrees: 120, NumLeaves: 16, LearningRate: 0.1, Seed: 1})
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	pairs, err := RankInteractions(f, []int{0, 1, 2, 3, 4}, GainPath, nil)
	if err != nil {
		t.Fatalf("RankInteractions: %v", err)
	}
	ap := averagePrecisionOf(pairs, truth)
	// Table 1 reports min AP 0.216 across configurations; anything at or
	// above that floor is consistent with the paper.
	if ap < 0.216 {
		t.Errorf("Gain-Path AP = %v, below the paper's observed floor", ap)
	}
}

func averagePrecisionOf(pairs []Pair, truth [][2]int) float64 {
	rel := map[int]bool{}
	scores := make([]float64, len(pairs))
	for i, p := range pairs {
		scores[i] = p.Score
		for _, tp := range truth {
			a, b := tp[0], tp[1]
			if a > b {
				a, b = b, a
			}
			if p.I == a && p.J == b {
				rel[i] = true
			}
		}
	}
	return stats.AveragePrecision(scores, rel)
}
