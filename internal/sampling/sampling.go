// Package sampling implements §3.3 of the paper: building per-feature
// sampling domains from a forest's split thresholds and generating the
// synthetic training set D* on which the explanation GAM is fitted.
//
// Six strategies are provided: the five of the paper — All-Thresholds
// (threshold midpoints, the Cohen et al. baseline), K-Quantile,
// Equi-Width, K-Means and Equi-Size — plus continuous Random sampling
// over the extended threshold range, which the paper describes as the
// generic fallback.
package sampling

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/obs"
	"gef/internal/par"
	"gef/internal/robust"
	"gef/internal/stats"
)

// Metrics instruments, hoisted so hot paths skip the registry lookup.
// Counters are labeled by domain strategy —
// sampling.rows_generated{strategy="equi-size"} — so strategy sweeps
// show up as distinct scrape series.
var (
	mDomainPoints = obs.Metrics().CounterVec("sampling.domain_points", "strategy")
	mDomainSize   = obs.Metrics().Histogram("sampling.domain_size")
	mRows         = obs.Metrics().CounterVec("sampling.rows_generated", "strategy")
	mForestEvals  = obs.Metrics().Counter("sampling.forest_evals")
)

// Strategy selects how a feature's sampling domain is derived from its
// split thresholds.
type Strategy string

const (
	// AllThresholds uses the midpoints of consecutive distinct thresholds
	// plus the ε-extended extremes (equivalent to Cohen et al. [5]).
	AllThresholds Strategy = "all-thresholds"
	// KQuantile uses the K quantiles of the threshold multiset, following
	// the threshold density.
	KQuantile Strategy = "k-quantile"
	// EquiWidth uses K evenly spaced points across the ε-extended
	// threshold range, ignoring threshold density.
	EquiWidth Strategy = "equi-width"
	// KMeans uses the centroids of a 1-D k-means clustering of the
	// thresholds (k = min(K, distinct thresholds)).
	KMeans Strategy = "k-means"
	// EquiSize splits the sorted threshold list into K contiguous
	// equal-size runs and uses each run's mean.
	EquiSize Strategy = "equi-size"
	// Random samples continuously and uniformly over the ε-extended
	// threshold range instead of a discrete domain.
	Random Strategy = "random"
)

// Strategies lists the discrete-domain strategies compared in the paper's
// Figs. 5 and 8, in presentation order.
var Strategies = []Strategy{AllThresholds, KQuantile, EquiWidth, KMeans, EquiSize}

// Config controls domain construction.
type Config struct {
	Strategy Strategy
	K        int     // points per feature (ignored by AllThresholds)
	Epsilon  float64 // relative range extension; default 0.05 (the paper's ε)
	Seed     int64   // drives k-means initialization
	// CategoricalThreshold, when > 0, forces the All-Thresholds domain
	// for any feature with fewer distinct thresholds than this, whatever
	// the strategy: the forest's response is constant within threshold
	// cells, so K-point domains on a categorical-like feature only
	// multiply distinct values (and would blow up factor-term sizes)
	// without adding information. GEF passes its L here (paper §3.5).
	CategoricalThreshold int
}

func (c Config) withDefaults() Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	return c
}

// Domains holds the per-feature sampling domains for the selected feature
// subset F′, plus the fill values used for unselected features when
// querying the forest (the forest still expects full-width inputs).
type Domains struct {
	NumFeatures int                // full input width
	Features    []int              // selected features F′, ascending
	Points      map[int][]float64  // discrete candidate values per selected feature
	Ranges      map[int][2]float64 // continuous [lo,hi] per selected feature (Random strategy)
	Fill        []float64          // default value per feature (threshold median)
	Strategy    Strategy
}

// BuildDomains derives sampling domains for the selected features from the
// forest's split thresholds using the configured strategy. Every selected
// feature must occur in at least one split predicate.
func BuildDomains(f *forest.Forest, selected []int, cfg Config) (*Domains, error) {
	return BuildDomainsCtx(context.Background(), f, selected, cfg)
}

// BuildDomainsCtx is BuildDomains under an obs span recording the
// strategy, feature count and resulting domain sizes.
func BuildDomainsCtx(ctx context.Context, f *forest.Forest, selected []int, cfg Config) (*Domains, error) {
	return BuildDomainsFromCtx(ctx, f.NumFeatures, f.ThresholdsByFeature(), selected, cfg)
}

// BuildDomainsFromCtx is BuildDomainsCtx over a precomputed threshold map
// (forest.ThresholdsByFeature): numFeatures is the forest's input width
// and thresholds its per-feature sorted split-threshold multisets. The
// engine caches the threshold map per forest fingerprint, so repeated
// domain constructions — AutoExplain candidates, sampling-strategy sweeps
// — skip the forest walk. The map is read, never mutated.
func BuildDomainsFromCtx(ctx context.Context, numFeatures int, thresholds map[int][]float64, selected []int, cfg Config) (*Domains, error) {
	_, sp := obs.Start(ctx, "sampling.build_domains",
		obs.Str("strategy", string(cfg.Strategy)),
		obs.Int("features", len(selected)),
		obs.Int("k", cfg.K))
	defer sp.End()
	d, err := buildDomains(numFeatures, thresholds, selected, cfg)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, j := range d.Features {
		n := len(d.Points[j])
		total += n
		mDomainSize.Observe(float64(n))
	}
	mDomainPoints.With(string(d.Strategy)).Add(int64(total))
	sp.Set(obs.Int("total_points", total))
	return d, nil
}

func buildDomains(numFeatures int, thresholds map[int][]float64, selected []int, cfg Config) (*Domains, error) {
	cfg = cfg.withDefaults()
	if cfg.Strategy != AllThresholds && cfg.Strategy != Random && cfg.K < 1 {
		return nil, fmt.Errorf("sampling: strategy %q requires K ≥ 1, got %d: %w", cfg.Strategy, cfg.K, robust.ErrConfig)
	}
	if math.IsNaN(cfg.Epsilon) || cfg.Epsilon < 0 {
		return nil, fmt.Errorf("sampling: Epsilon = %v is not a non-negative number: %w", cfg.Epsilon, robust.ErrConfig)
	}
	d := &Domains{
		NumFeatures: numFeatures,
		Features:    append([]int(nil), selected...),
		Points:      make(map[int][]float64),
		Ranges:      make(map[int][2]float64),
		Fill:        make([]float64, numFeatures),
		Strategy:    cfg.Strategy,
	}
	sort.Ints(d.Features)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for j := 0; j < numFeatures; j++ {
		if v := thresholds[j]; len(v) > 0 {
			d.Fill[j] = stats.QuantileSorted(v, 0.5)
		}
	}
	for _, j := range d.Features {
		v := thresholds[j]
		if len(v) == 0 {
			return nil, fmt.Errorf("sampling: %w", &robust.FeatureError{
				Feature: j,
				Err:     fmt.Errorf("no split thresholds in the forest: %w", robust.ErrDegenerate),
			})
		}
		if robust.Fire(robust.SiteDomains, j, 0) {
			return nil, fmt.Errorf("sampling: %w", &robust.FeatureError{
				Feature: j,
				Err:     fmt.Errorf("injected domain collapse: %w", robust.ErrDegenerate),
			})
		}
		lo, hi := extendedRange(v, cfg.Epsilon)
		d.Ranges[j] = [2]float64{lo, hi}
		eff := cfg
		if cfg.CategoricalThreshold > 0 && cfg.Strategy != Random &&
			len(dedupeSorted(v)) < cfg.CategoricalThreshold {
			eff.Strategy = AllThresholds
		}
		pts, err := domainPoints(eff, v, lo, hi, rng)
		if err != nil {
			return nil, fmt.Errorf("sampling: feature %d: %w", j, err)
		}
		// A selected feature must actually vary in D*: strategies that
		// collapse onto fewer than two distinct points (e.g. K-Quantile on
		// a one-hot feature whose only threshold is 0.5) fall back to the
		// All-Thresholds domain, which always straddles every split.
		if cfg.Strategy != Random && len(dedupeSorted(sortedCopy(pts))) < 2 {
			pts = allThresholdPoints(v, lo, hi)
		}
		// Defense in depth behind the fallback: a domain with fewer than
		// two distinct points cannot make the feature vary in D*, so the
		// caller must drop the feature, not fit through it.
		if cfg.Strategy != Random {
			if n := len(dedupeSorted(sortedCopy(pts))); n < 2 {
				return nil, fmt.Errorf("sampling: %w", &robust.FeatureError{
					Feature: j,
					Err:     fmt.Errorf("sampling domain collapsed to %d distinct points: %w", n, robust.ErrDegenerate),
				})
			}
		}
		d.Points[j] = pts
	}
	return d, nil
}

// extendedRange returns [v₁−ε, v_t+ε] with ε = rel·(v_t−v₁), falling back
// to an absolute extension when all thresholds coincide.
func extendedRange(sorted []float64, rel float64) (lo, hi float64) {
	v1, vt := sorted[0], sorted[len(sorted)-1]
	eps := rel * (vt - v1)
	if eps == 0 {
		eps = rel * math.Max(1, math.Abs(v1))
	}
	return v1 - eps, vt + eps
}

// domainPoints computes the discrete candidate values for one feature.
func domainPoints(cfg Config, sorted []float64, lo, hi float64, rng *rand.Rand) ([]float64, error) {
	switch cfg.Strategy {
	case Random:
		return nil, nil // continuous: no discrete points
	case AllThresholds:
		return allThresholdPoints(sorted, lo, hi), nil
	case KQuantile:
		return dedupeSorted(quantilePoints(sorted, cfg.K)), nil
	case EquiWidth:
		return equiWidthPoints(lo, hi, cfg.K), nil
	case KMeans:
		return stats.KMeans1D(sorted, cfg.K, rng), nil
	case EquiSize:
		return dedupeSorted(equiSizePoints(sorted, cfg.K)), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", cfg.Strategy)
	}
}

// allThresholdPoints returns midpoints between consecutive distinct
// thresholds plus the extended extremes.
func allThresholdPoints(sorted []float64, lo, hi float64) []float64 {
	distinct := dedupeSorted(sorted)
	pts := make([]float64, 0, len(distinct)+1)
	pts = append(pts, lo)
	for i := 0; i+1 < len(distinct); i++ {
		pts = append(pts, (distinct[i]+distinct[i+1])/2)
	}
	pts = append(pts, hi)
	return pts
}

// quantilePoints returns the K quantiles of the threshold multiset at
// levels j/(K−1) (single point: the median).
func quantilePoints(sorted []float64, k int) []float64 {
	if k == 1 {
		return []float64{stats.QuantileSorted(sorted, 0.5)}
	}
	pts := make([]float64, k)
	for j := 0; j < k; j++ {
		pts[j] = stats.QuantileSorted(sorted, float64(j)/float64(k-1))
	}
	return pts
}

// equiWidthPoints returns K evenly spaced points over [lo, hi].
func equiWidthPoints(lo, hi float64, k int) []float64 {
	if k == 1 {
		return []float64{(lo + hi) / 2}
	}
	pts := make([]float64, k)
	step := (hi - lo) / float64(k-1)
	for j := 0; j < k; j++ {
		pts[j] = lo + float64(j)*step
	}
	return pts
}

// equiSizePoints splits the sorted threshold list into K contiguous runs
// of (nearly) equal size and returns each run's mean.
func equiSizePoints(sorted []float64, k int) []float64 {
	n := len(sorted)
	if k > n {
		k = n
	}
	pts := make([]float64, 0, k)
	for j := 0; j < k; j++ {
		start := j * n / k
		end := (j + 1) * n / k
		if end == start {
			continue
		}
		var s float64
		for _, v := range sorted[start:end] {
			s += v
		}
		pts = append(pts, s/float64(end-start))
	}
	return pts
}

func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

func dedupeSorted(sorted []float64) []float64 {
	out := make([]float64, 0, len(sorted))
	for i, v := range sorted {
		//lint:ignore floatcmp dedupe of sorted thresholds; duplicates are bit-identical copies
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// DomainSize returns the number of candidate points for feature j
// (0 for the continuous Random strategy).
func (d *Domains) DomainSize(j int) int { return len(d.Points[j]) }

// SampleRow fills a full-width input row: selected features draw uniformly
// from their domains (or ranges for Random), unselected features take
// their fill value.
//
//lint:ignore obsspan per-row hot path; the enclosing GenerateCtx span covers the batch
func (d *Domains) SampleRow(rng *rand.Rand) []float64 {
	x := make([]float64, d.NumFeatures)
	copy(x, d.Fill)
	for _, j := range d.Features {
		if d.Strategy == Random {
			r := d.Ranges[j]
			x[j] = r[0] + rng.Float64()*(r[1]-r[0])
		} else {
			pts := d.Points[j]
			x[j] = pts[rng.Intn(len(pts))]
		}
	}
	return x
}

// Generate builds the synthetic dataset D*: n rows sampled from the
// domains, labelled by the forest's predictions (probabilities for
// binary-logistic forests, raw scores otherwise). This is the complete
// step (i) of the GEF framework.
func Generate(f *forest.Forest, d *Domains, n int, seed int64) *dataset.Dataset {
	//lint:ignore errdrop background context cannot be canceled
	ds, _ := GenerateCtx(context.Background(), f, d, n, seed)
	return ds
}

// GenerateCtx is Generate under an obs span; every generated row costs
// one forest evaluation, counted in sampling.forest_evals. Row sampling
// draws from one sequential RNG stream (so D*'s inputs are identical
// for a given seed regardless of parallelism); the forest labeling —
// the expensive part, one full forest traversal per row — runs through
// the flat structure-of-arrays batch kernels (forest.Compiled), in
// parallel over fixed row chunks with disjoint writes, hence
// bit-identical at any worker count. The caller's ctx threads all the
// way into the traversal, so deadlines cancel the labeling itself.
// Returns ctx.Err() if canceled.
func GenerateCtx(ctx context.Context, f *forest.Forest, d *Domains, n int, seed int64) (*dataset.Dataset, error) {
	_, sp := obs.Start(ctx, "sampling.generate",
		obs.Int("rows", n), obs.Str("strategy", string(d.Strategy)),
		obs.Int("workers", par.Workers()))
	defer sp.End()
	mRows.With(string(d.Strategy)).Add(int64(n))
	mForestEvals.Add(int64(n))
	rng := rand.New(rand.NewSource(seed))
	task := dataset.Regression
	if f.Objective == forest.BinaryLogistic {
		task = dataset.Classification
	}
	ds := &dataset.Dataset{
		X:            make([][]float64, n),
		FeatureNames: f.FeatureNames,
		Task:         task,
	}
	for i := 0; i < n; i++ {
		ds.X[i] = d.SampleRow(rng)
	}
	ys, err := f.PredictBatchCtx(ctx, ds.X)
	if err != nil {
		return nil, err
	}
	ds.Y = ys
	return ds, nil
}
