package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gbdt"
)

// sigmoidForest trains a small forest on the Fig. 3 sigmoid toy so tests
// exercise realistic threshold distributions (dense near 0.5).
func sigmoidForest(t *testing.T) *forest.Forest {
	t.Helper()
	ds := dataset.SigmoidToy(2000, 0.05, 1)
	f, err := gbdt.Train(ds, gbdt.Params{NumTrees: 50, NumLeaves: 8, LearningRate: 0.2, Seed: 1})
	if err != nil {
		t.Fatalf("training sigmoid forest: %v", err)
	}
	return f
}

func TestBuildDomainsAllStrategies(t *testing.T) {
	f := sigmoidForest(t)
	for _, s := range Strategies {
		d, err := BuildDomains(f, []int{0}, Config{Strategy: s, K: 15, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		pts := d.Points[0]
		if len(pts) == 0 {
			t.Fatalf("%s: empty domain", s)
		}
		if !sort.Float64sAreSorted(pts) && s != KMeans {
			// k-means centroids are sorted by construction too, but keep
			// the error message informative either way.
			t.Errorf("%s: domain not sorted: %v", s, pts)
		}
		if s != AllThresholds && len(pts) > 15 {
			t.Errorf("%s: %d points exceed K=15", s, len(pts))
		}
	}
}

func TestAllThresholdsMidpointsAndExtension(t *testing.T) {
	// Hand-built forest with thresholds {0.2, 0.4, 0.8} on feature 0.
	f := forestWithThresholds([]float64{0.2, 0.4, 0.8})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: AllThresholds})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	pts := d.Points[0]
	// ε = 0.05·(0.8−0.2) = 0.03 → endpoints 0.17 and 0.83; midpoints 0.3, 0.6.
	want := []float64{0.17, 0.3, 0.6, 0.83}
	if len(pts) != len(want) {
		t.Fatalf("points = %v, want %v", pts, want)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

// forestWithThresholds builds a chain of stumps with the given thresholds
// on feature 0.
func forestWithThresholds(th []float64) *forest.Forest {
	f := &forest.Forest{NumFeatures: 1, Objective: forest.Regression}
	for _, v := range th {
		f.Trees = append(f.Trees, forest.Tree{Nodes: []forest.Node{
			{Feature: 0, Threshold: v, Left: 1, Right: 2, Gain: 1, Cover: 10},
			{Left: -1, Right: -1, Value: 0, Cover: 5},
			{Left: -1, Right: -1, Value: 1, Cover: 5},
		}})
	}
	return f
}

func TestAllThresholdsDuplicatesCollapse(t *testing.T) {
	f := forestWithThresholds([]float64{0.5, 0.5, 0.5, 0.7})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: AllThresholds})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	// Distinct thresholds {0.5, 0.7} → midpoint 0.6 plus two endpoints.
	if len(d.Points[0]) != 3 {
		t.Errorf("points = %v, want 3 values", d.Points[0])
	}
}

func TestSingleThresholdFeature(t *testing.T) {
	f := forestWithThresholds([]float64{0.5})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: AllThresholds})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	pts := d.Points[0]
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2 (both sides of the split)", pts)
	}
	if !(pts[0] < 0.5 && pts[1] > 0.5) {
		t.Errorf("points %v must straddle the threshold", pts)
	}
}

func TestKQuantileFollowsDensity(t *testing.T) {
	// 90 thresholds near 0.5, 10 spread out: quantile points should
	// concentrate near 0.5.
	var th []float64
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 90; i++ {
		th = append(th, 0.5+0.01*r.NormFloat64())
	}
	for i := 0; i < 10; i++ {
		th = append(th, r.Float64())
	}
	f := forestWithThresholds(th)
	d, err := BuildDomains(f, []int{0}, Config{Strategy: KQuantile, K: 10})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	near := 0
	for _, p := range d.Points[0] {
		if math.Abs(p-0.5) < 0.05 {
			near++
		}
	}
	if near < 5 {
		t.Errorf("only %d/%d quantile points near the dense region", near, len(d.Points[0]))
	}
}

func TestEquiWidthIgnoresDensity(t *testing.T) {
	f := sigmoidForest(t)
	d, err := BuildDomains(f, []int{0}, Config{Strategy: EquiWidth, K: 11})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	pts := d.Points[0]
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	// Spacing must be uniform.
	step := pts[1] - pts[0]
	for i := 2; i < len(pts); i++ {
		if math.Abs((pts[i]-pts[i-1])-step) > 1e-9 {
			t.Errorf("non-uniform spacing at %d", i)
		}
	}
}

func TestEquiSizeAveragesRuns(t *testing.T) {
	f := forestWithThresholds([]float64{1, 2, 3, 4, 5, 6})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: EquiSize, K: 3})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	want := []float64{1.5, 3.5, 5.5}
	pts := d.Points[0]
	if len(pts) != 3 {
		t.Fatalf("points = %v, want %v", pts, want)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Errorf("points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestKMeansDomainRespectsK(t *testing.T) {
	f := sigmoidForest(t)
	d, err := BuildDomains(f, []int{0}, Config{Strategy: KMeans, K: 7, Seed: 2})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	if len(d.Points[0]) != 7 {
		t.Errorf("got %d centroids, want 7", len(d.Points[0]))
	}
}

func TestBuildDomainsErrors(t *testing.T) {
	f := forestWithThresholds([]float64{0.5})
	if _, err := BuildDomains(f, []int{0}, Config{Strategy: KQuantile}); err == nil {
		t.Error("accepted K=0 for k-quantile")
	}
	if _, err := BuildDomains(f, []int{0}, Config{Strategy: "bogus", K: 5}); err == nil {
		t.Error("accepted unknown strategy")
	}
	// Feature 1 doesn't exist in splits.
	f2 := &forest.Forest{NumFeatures: 2, Objective: forest.Regression, Trees: f.Trees}
	if _, err := BuildDomains(f2, []int{1}, Config{Strategy: AllThresholds}); err == nil {
		t.Error("accepted feature with no thresholds")
	}
}

func TestSampleRowUsesFillForUnselected(t *testing.T) {
	// Two-feature forest; select only feature 0.
	f := &forest.Forest{NumFeatures: 2, Objective: forest.Regression}
	f.Trees = append(f.Trees, forest.Tree{Nodes: []forest.Node{
		{Feature: 0, Threshold: 0.5, Left: 1, Right: 2, Gain: 1, Cover: 10},
		{Left: -1, Right: -1, Value: 0, Cover: 5},
		{Left: -1, Right: -1, Value: 1, Cover: 5},
	}})
	f.Trees = append(f.Trees, forest.Tree{Nodes: []forest.Node{
		{Feature: 1, Threshold: 0.8, Left: 1, Right: 2, Gain: 1, Cover: 10},
		{Left: -1, Right: -1, Value: 0, Cover: 5},
		{Left: -1, Right: -1, Value: 1, Cover: 5},
	}})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: AllThresholds})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		row := d.SampleRow(rng)
		if row[1] != 0.8 { // median of feature 1's single threshold
			t.Fatalf("unselected feature = %v, want fill 0.8", row[1])
		}
	}
}

func TestGenerateLabelsWithForest(t *testing.T) {
	f := sigmoidForest(t)
	d, err := BuildDomains(f, []int{0}, Config{Strategy: EquiSize, K: 30})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	ds := Generate(f, d, 500, 7)
	if ds.NumRows() != 500 {
		t.Fatalf("rows = %d, want 500", ds.NumRows())
	}
	for i, x := range ds.X {
		if ds.Y[i] != f.Predict(x) {
			t.Fatal("label is not the forest prediction")
		}
	}
	if ds.Task != dataset.Regression {
		t.Errorf("task = %v, want regression", ds.Task)
	}
}

func TestGenerateClassificationTask(t *testing.T) {
	f := forestWithThresholds([]float64{0.5})
	f.Objective = forest.BinaryLogistic
	d, err := BuildDomains(f, []int{0}, Config{Strategy: AllThresholds})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	ds := Generate(f, d, 50, 1)
	if ds.Task != dataset.Classification {
		t.Errorf("task = %v, want classification", ds.Task)
	}
	for _, y := range ds.Y {
		if y < 0 || y > 1 {
			t.Fatalf("probability label %v outside [0,1]", y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f := sigmoidForest(t)
	d, _ := BuildDomains(f, []int{0}, Config{Strategy: KQuantile, K: 10})
	a := Generate(f, d, 100, 5)
	b := Generate(f, d, 100, 5)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same-seed generation differs")
		}
	}
}

func TestRandomStrategySamplesContinuously(t *testing.T) {
	f := forestWithThresholds([]float64{0.2, 0.8})
	d, err := BuildDomains(f, []int{0}, Config{Strategy: Random, Seed: 1})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[float64]bool{}
	lo, hi := d.Ranges[0][0], d.Ranges[0][1]
	for i := 0; i < 200; i++ {
		v := d.SampleRow(rng)[0]
		if v < lo || v > hi {
			t.Fatalf("sample %v outside [%v, %v]", v, lo, hi)
		}
		seen[v] = true
	}
	if len(seen) < 190 {
		t.Errorf("continuous sampling produced only %d distinct values", len(seen))
	}
}

// Property: generated rows take values only from the domains — selected
// features from their candidate points, unselected features their fill
// value.
func TestGenerateClosedOverDomainsProperty(t *testing.T) {
	f := sigmoidForest(t)
	prop := func(seed int64) bool {
		for _, s := range Strategies {
			d, err := BuildDomains(f, []int{0}, Config{Strategy: s, K: 12, Seed: seed})
			if err != nil {
				return false
			}
			allowed := map[float64]bool{}
			for _, p := range d.Points[0] {
				allowed[p] = true
			}
			ds := Generate(f, d, 50, seed)
			for _, row := range ds.X {
				if !allowed[row[0]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateDomainFallsBackToStraddle(t *testing.T) {
	// A one-hot-style feature with a single distinct threshold must not
	// collapse to one point under K-Quantile/K-Means/Equi-Size.
	f := forestWithThresholds([]float64{0.5, 0.5, 0.5})
	for _, s := range []Strategy{KQuantile, KMeans, EquiSize} {
		d, err := BuildDomains(f, []int{0}, Config{Strategy: s, K: 10, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		pts := d.Points[0]
		if len(pts) < 2 {
			t.Fatalf("%s: degenerate domain %v", s, pts)
		}
		var below, above bool
		for _, p := range pts {
			if p < 0.5 {
				below = true
			}
			if p > 0.5 {
				above = true
			}
		}
		if !below || !above {
			t.Errorf("%s: domain %v does not straddle the split", s, pts)
		}
	}
}

// Regression test: a categorical-like feature (few distinct thresholds)
// must keep a small domain under every strategy when
// CategoricalThreshold is set — Equi-Width at K=4500 once produced a
// 4500-point domain for such a feature, which became a 4500-level factor
// term and an hours-long GAM fit.
func TestCategoricalFeaturesGetThresholdDomains(t *testing.T) {
	// 7 distinct thresholds, heavily duplicated (like number_of_elements).
	var th []float64
	for i := 0; i < 50; i++ {
		th = append(th, float64(1+i%7)+0.5)
	}
	f := forestWithThresholds(th)
	for _, s := range []Strategy{KQuantile, EquiWidth, KMeans, EquiSize} {
		d, err := BuildDomains(f, []int{0}, Config{
			Strategy: s, K: 4500, Seed: 1, CategoricalThreshold: 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := len(d.Points[0]); got > 8 {
			t.Errorf("%s: categorical feature got %d domain points, want ≤ 8 (cells)", s, got)
		}
	}
	// Without the threshold, Equi-Width keeps its K points (continuous
	// treatment).
	d, err := BuildDomains(f, []int{0}, Config{Strategy: EquiWidth, K: 100, Seed: 1})
	if err != nil {
		t.Fatalf("BuildDomains: %v", err)
	}
	if len(d.Points[0]) != 100 {
		t.Errorf("unconstrained equi-width domain = %d points, want 100", len(d.Points[0]))
	}
}

// Property: every discrete strategy's domain points lie within the
// ε-extended threshold range.
func TestDomainsWithinRangeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		th := make([]float64, n)
		for i := range th {
			th[i] = r.NormFloat64() * 5
		}
		f := forestWithThresholds(th)
		for _, s := range Strategies {
			d, err := BuildDomains(f, []int{0}, Config{Strategy: s, K: 1 + r.Intn(12), Seed: seed})
			if err != nil {
				return false
			}
			lo, hi := d.Ranges[0][0], d.Ranges[0][1]
			for _, p := range d.Points[0] {
				if p < lo-1e-9 || p > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
