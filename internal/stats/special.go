package stats

import "math"

// logGamma returns ln Γ(x) for x > 0 (Lanczos approximation, g=7, n=9).
func logGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	// Coefficients for the Lanczos approximation.
	coef := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - logGamma(1-x)
	}
	x--
	a := coef[0]
	t := x + 7.5
	for i := 1; i < len(coef); i++ {
		a += coef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// incompleteBeta returns the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style, with the Lentz algorithm).
func incompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := logGamma(a+b) - logGamma(a) - logGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student's t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * incompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// WelchResult holds the outcome of a two-sample Welch's t-test.
type WelchResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-tailed p-value
}

// WelchTTest performs a two-sample, two-tailed Welch's t-test of the null
// hypothesis that the two samples have equal means, without assuming equal
// variances. This is the test the paper uses to compare interaction-
// detection strategies against Gain-Path (α = 0.05).
func WelchTTest(a, b []float64) WelchResult {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return WelchResult{T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		//lint:ignore floatcmp zero-variance degenerate case: equal means give t = 0, anything else diverges
		if ma == mb {
			return WelchResult{T: 0, DF: na + nb - 2, P: 1}
		}
		return WelchResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	return WelchResult{T: t, DF: df, P: p}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// NormalCDF returns the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) using
// the Acklam rational approximation refined by one Halley step; absolute
// error is below 1e-9 across (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's coefficients.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
