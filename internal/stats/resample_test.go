package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapCICoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, Mean, 1000, 0.95, rng)
	if lo >= hi {
		t.Fatalf("degenerate interval [%v, %v]", lo, hi)
	}
	if lo > 5 || hi < 5 {
		t.Errorf("95%% CI [%v, %v] misses the true mean 5", lo, hi)
	}
	// Interval width for n=200, sd=1 should be around 2·1.96/√200 ≈ 0.28.
	if w := hi - lo; w < 0.1 || w > 0.6 {
		t.Errorf("interval width %v implausible", w)
	}
}

func TestBootstrapCIWiderAtHigherLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	lo90, hi90 := BootstrapCI(xs, Mean, 800, 0.90, rand.New(rand.NewSource(1)))
	lo99, hi99 := BootstrapCI(xs, Mean, 800, 0.99, rand.New(rand.NewSource(1)))
	if hi99-lo99 <= hi90-lo90 {
		t.Errorf("99%% interval (%v) not wider than 90%% (%v)", hi99-lo99, hi90-lo90)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(){
		func() { BootstrapCI(nil, Mean, 10, 0.95, rng) },
		func() { BootstrapCI([]float64{1}, Mean, 1, 0.95, rng) },
		func() { BootstrapCI([]float64{1}, Mean, 10, 1.5, rng) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPearsonCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := PearsonCorrelation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("corr(a,a) = %v, want 1", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := PearsonCorrelation(a, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("corr(a,-a) = %v, want -1", got)
	}
	if got := PearsonCorrelation(a, []float64{2, 2, 2, 2}); !math.IsNaN(got) {
		t.Errorf("corr with constant = %v, want NaN", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform gives Spearman exactly 1.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 8, 27, 64, 125} // a³
	if got := SpearmanCorrelation(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman of monotone transform = %v, want 1", got)
	}
	// Pearson of the same data is below 1 (nonlinear).
	if got := PearsonCorrelation(a, b); got >= 1-1e-9 {
		t.Errorf("Pearson of cubic = %v, expected < 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Mid-rank handling: [1, 1, 2] vs [3, 3, 4] is still perfectly
	// concordant.
	got := SpearmanCorrelation([]float64{1, 1, 2}, []float64{3, 3, 4})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman with ties = %v, want 1", got)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{10, 30, 20, 30})
	want := []float64{1, 3.5, 2, 3.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
