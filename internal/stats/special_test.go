package stats

import (
	"math"
	"testing"
)

func TestLogGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10.5, 13.940625219403763}, // math.lgamma(10.5), cross-checked numerically
	}
	for _, c := range cases {
		if got := logGamma(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("logGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogGammaInvalid(t *testing.T) {
	if !math.IsNaN(logGamma(-1)) {
		t.Error("logGamma(-1) should be NaN")
	}
}

func TestIncompleteBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		a, b := 2.5, 3.5
		left := incompleteBeta(a, b, x)
		right := 1 - incompleteBeta(b, a, 1-x)
		if math.Abs(left-right) > 1e-12 {
			t.Errorf("symmetry broken at x=%v: %v vs %v", x, left, right)
		}
	}
}

func TestIncompleteBetaUniform(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := incompleteBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Values cross-checked against scipy.stats.t.cdf.
	cases := []struct{ t, df, want float64 }{
		{0, 5, 0.5},
		{1, 1, 0.75},                 // Cauchy: arctan(1)/π + 0.5
		{2.0, 10, 0.963306},          // scipy t.cdf(2, 10)
		{-2.0, 10, 1 - 0.963306},     // symmetry
		{1.812461, 10, 0.95},         // t_{0.95,10} quantile
		{12.706205, 1, 0.975},        // t_{0.975,1}
		{1.959964, 1e6, 0.975000176}, // ~normal for huge df
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFInvalidDF(t *testing.T) {
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("StudentTCDF with df=0 should be NaN")
	}
}

func TestWelchTTestEqualSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := WelchTTest(a, a)
	if math.Abs(res.T) > 1e-12 {
		t.Errorf("t = %v, want 0", res.T)
	}
	if math.Abs(res.P-1) > 1e-9 {
		t.Errorf("p = %v, want 1", res.P)
	}
}

func TestWelchTTestKnown(t *testing.T) {
	// Reference values computed independently: the t statistic and
	// Welch–Satterthwaite df from the closed-form formulas, the two-tailed
	// p-value by high-resolution numeric integration of the t density.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.2}
	res := WelchTTest(a, b)
	if math.Abs(res.T-(-2.841322271378385)) > 1e-9 {
		t.Errorf("t = %v, want ≈ -2.8413", res.T)
	}
	if math.Abs(res.DF-27.88250984178797) > 1e-9 {
		t.Errorf("df = %v, want ≈ 27.8825", res.DF)
	}
	if math.Abs(res.P-0.0083034254) > 1e-8 {
		t.Errorf("p = %v, want ≈ 0.0083034", res.P)
	}
}

func TestWelchTTestTooSmall(t *testing.T) {
	res := WelchTTest([]float64{1}, []float64{2, 3})
	if !math.IsNaN(res.P) {
		t.Error("expected NaN p-value for sample of size 1")
	}
}

func TestWelchTTestZeroVariance(t *testing.T) {
	same := WelchTTest([]float64{2, 2, 2}, []float64{2, 2})
	if same.P != 1 {
		t.Errorf("identical constant samples: p = %v, want 1", same.P)
	}
	diff := WelchTTest([]float64{2, 2, 2}, []float64{3, 3})
	if diff.P != 0 {
		t.Errorf("different constant samples: p = %v, want 0", diff.P)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959964, 0.975},
		{-1.959964, 0.025},
		{1, 0.8413447},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ∓Inf")
	}
}
