package stats

import (
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimator, used to
// visualize the distribution of forest split thresholds (paper Fig. 3).
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a Gaussian KDE over xs. If bandwidth ≤ 0, Silverman's
// rule of thumb is used: h = 0.9·min(σ, IQR/1.34)·n^(−1/5).
func NewKDE(xs []float64, bandwidth float64) *KDE {
	data := append([]float64(nil), xs...)
	sort.Float64s(data)
	if bandwidth <= 0 {
		bandwidth = silverman(data)
	}
	return &KDE{xs: data, bandwidth: bandwidth}
}

func silverman(sorted []float64) float64 {
	n := float64(len(sorted))
	if n < 2 {
		return 1
	}
	sd := StdDev(sorted)
	iqr := QuantileSorted(sorted, 0.75) - QuantileSorted(sorted, 0.25)
	spread := sd
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread == 0 {
		spread = 1
	}
	return 0.9 * spread * math.Pow(n, -0.2)
}

// Bandwidth returns the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density returns the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	if len(k.xs) == 0 {
		return 0
	}
	h := k.bandwidth
	var s float64
	for _, xi := range k.xs {
		z := (x - xi) / h
		s += math.Exp(-0.5 * z * z)
	}
	return s / (float64(len(k.xs)) * h * math.Sqrt(2*math.Pi))
}

// Grid evaluates the density at n evenly spaced points over [lo, hi] and
// returns the grid points and densities.
func (k *KDE) Grid(lo, hi float64, n int) (xs, ys []float64) {
	if n < 2 {
		panic("stats: KDE.Grid needs n ≥ 2")
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Density(xs[i])
	}
	return xs, ys
}
