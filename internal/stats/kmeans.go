package stats

import (
	"math"
	"math/rand"
	"sort"
)

// KMeans1D clusters the one-dimensional values xs into k clusters with
// Lloyd's algorithm and k-means++ initialization, returning the sorted
// cluster centroids. If xs has fewer than k distinct values, the distinct
// values themselves are returned (paper §3.3: k = min(|V_i|, K)).
//
// The rng drives only the k-means++ seeding, so results are reproducible
// for a fixed source.
func KMeans1D(xs []float64, k int, rng *rand.Rand) []float64 {
	if k <= 0 {
		panic("stats: KMeans1D needs k ≥ 1")
	}
	if len(xs) == 0 {
		return nil
	}
	distinct := distinctSorted(xs)
	if len(distinct) <= k {
		return distinct
	}
	data := append([]float64(nil), xs...)
	sort.Float64s(data)

	centroids := kmeansPPInit(data, k, rng)
	assign := make([]int, len(data))
	const maxIter = 100
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step. Data and centroids are sorted, so a linear merge
		// suffices: the best centroid index is non-decreasing along data.
		sort.Float64s(centroids)
		c := 0
		for i, x := range data {
			for c+1 < len(centroids) &&
				math.Abs(centroids[c+1]-x) <= math.Abs(centroids[c]-x) {
				c++
			}
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		// Update step.
		sum := make([]float64, k)
		cnt := make([]int, k)
		for i, x := range data {
			sum[assign[i]] += x
			cnt[assign[i]]++
		}
		for j := 0; j < k; j++ {
			if cnt[j] > 0 {
				centroids[j] = sum[j] / float64(cnt[j])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	sort.Float64s(centroids)
	return centroids
}

// kmeansPPInit picks k initial centroids with the k-means++ scheme.
func kmeansPPInit(data []float64, k int, rng *rand.Rand) []float64 {
	centroids := make([]float64, 0, k)
	centroids = append(centroids, data[rng.Intn(len(data))])
	d2 := make([]float64, len(data))
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, x := range data {
			d := x - last
			d *= d
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, data[rng.Intn(len(data))])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := len(data) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, data[pick])
	}
	return centroids
}

func distinctSorted(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := s[:0]
	for i, v := range s {
		//lint:ignore floatcmp dedupe of sorted values; duplicates are bit-identical
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return append([]float64(nil), out...)
}
