package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if got != 0 {
		t.Errorf("RMSE of identical = %v, want 0", got)
	}
	got = RMSE([]float64{0, 0}, []float64{3, 4})
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestRMSEEmpty(t *testing.T) {
	if RMSE(nil, nil) != 0 {
		t.Error("RMSE of empty should be 0")
	}
}

func TestRMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMAEAndMSE(t *testing.T) {
	pred := []float64{1, 2}
	tgt := []float64{2, 4}
	if got := MAE(pred, tgt); got != 1.5 {
		t.Errorf("MAE = %v, want 1.5", got)
	}
	if got := MSE(pred, tgt); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("MSE = %v, want 2.5", got)
	}
}

func TestR2Perfect(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("R2 perfect = %v, want 1", got)
	}
}

func TestR2MeanPredictor(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	pred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(pred, y); math.Abs(got) > 1e-12 {
		t.Errorf("R2 of mean predictor = %v, want 0", got)
	}
}

func TestR2ConstantTargetNaN(t *testing.T) {
	if got := R2([]float64{1, 2}, []float64{5, 5}); !math.IsNaN(got) {
		t.Errorf("R2 with constant target = %v, want NaN", got)
	}
}

func TestAccuracy(t *testing.T) {
	prob := []float64{0.9, 0.2, 0.6, 0.4}
	tgt := []float64{1, 0, 0, 0}
	if got := Accuracy(prob, tgt); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions → near-zero loss.
	if got := LogLoss([]float64{1, 0}, []float64{1, 0}); got > 1e-10 {
		t.Errorf("LogLoss perfect = %v, want ~0", got)
	}
	// p = 0.5 everywhere → ln 2.
	got := LogLoss([]float64{0.5, 0.5}, []float64{1, 0})
	if math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("LogLoss 0.5 = %v, want ln2", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic dataset is 32/7.
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v, want -1/5", Min(xs), Max(xs))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.SD-1) > 1e-12 {
		t.Errorf("SD = %v, want 1", s.SD)
	}
}

func TestAveragePrecisionPerfect(t *testing.T) {
	// Relevant items ranked first → AP = 1.
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	rel := map[int]bool{0: true, 1: true}
	if got := AveragePrecision(scores, rel); got != 1 {
		t.Errorf("AP = %v, want 1", got)
	}
}

func TestAveragePrecisionWorst(t *testing.T) {
	// Single relevant item ranked last of 4 → AP = 1/4.
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	rel := map[int]bool{3: true}
	if got := AveragePrecision(scores, rel); got != 0.25 {
		t.Errorf("AP = %v, want 0.25", got)
	}
}

func TestAveragePrecisionInterleaved(t *testing.T) {
	// Relevant at ranks 1 and 3 → AP = (1/1 + 2/3)/2 = 5/6.
	scores := []float64{0.9, 0.5, 0.8, 0.1}
	rel := map[int]bool{0: true, 1: true}
	want := (1.0 + 2.0/3.0) / 2
	if got := AveragePrecision(scores, rel); math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, want)
	}
}

func TestAveragePrecisionEmptyRelevant(t *testing.T) {
	if got := AveragePrecision([]float64{1, 2}, nil); got != 0 {
		t.Errorf("AP = %v, want 0", got)
	}
}

// Property: AP is always in [1/n, 1] when there is at least one relevant
// item among n scored items.
func TestAveragePrecisionBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = r.Float64()
		}
		rel := map[int]bool{r.Intn(n): true}
		ap := AveragePrecision(scores, rel)
		return ap >= 1/float64(n)-1e-12 && ap <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Min":            func() { Min(nil) },
		"Max":            func() { Max(nil) },
		"QuantileSorted": func() { QuantileSorted(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on empty input", name)
				}
			}()
			fn()
		}()
	}
}

func TestMAEEmptyAndMismatch(t *testing.T) {
	if MAE(nil, nil) != 0 {
		t.Error("MAE of empty should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	sorted := []float64{1, 2, 3, 4, 5}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if Quantile(xs, q) != QuantileSorted(sorted, q) {
			t.Errorf("Quantile and QuantileSorted disagree at q=%v", q)
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	// Interpolated: q=1/3 over [1,2,3,4] is exactly 2 (type-7).
	if got := Quantile(xs, 1.0/3.0); math.Abs(got-2) > 1e-12 {
		t.Errorf("q1/3 = %v, want 2", got)
	}
}

func TestQuantileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 || v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
