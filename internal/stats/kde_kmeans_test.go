package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKDEIntegratesToOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	k := NewKDE(xs, 0)
	// Trapezoidal integration over a wide interval.
	grid, dens := k.Grid(-8, 8, 1601)
	var integral float64
	for i := 1; i < len(grid); i++ {
		integral += 0.5 * (dens[i] + dens[i-1]) * (grid[i] - grid[i-1])
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("KDE integral = %v, want ≈ 1", integral)
	}
}

func TestKDEPeakNearMode(t *testing.T) {
	// Tight cluster at 5 → density should peak near 5.
	xs := []float64{4.9, 5.0, 5.1, 5.0, 4.95, 5.05}
	k := NewKDE(xs, 0)
	if k.Density(5) <= k.Density(3) {
		t.Error("density at mode should exceed density far away")
	}
}

func TestKDEExplicitBandwidth(t *testing.T) {
	k := NewKDE([]float64{0}, 2)
	if k.Bandwidth() != 2 {
		t.Errorf("Bandwidth = %v, want 2", k.Bandwidth())
	}
	// Single point with h=2: density at 0 is 1/(2·sqrt(2π)).
	want := 1 / (2 * math.Sqrt(2*math.Pi))
	if got := k.Density(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Density(0) = %v, want %v", got, want)
	}
}

func TestKDEEmpty(t *testing.T) {
	k := NewKDE(nil, 0)
	if k.Density(0) != 0 {
		t.Error("empty KDE density should be 0")
	}
}

func TestKDEGridPanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKDE([]float64{1}, 1).Grid(0, 1, 1)
}

func TestKMeans1DTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, rng.NormFloat64()*0.1)    // cluster at 0
		xs = append(xs, 10+rng.NormFloat64()*0.1) // cluster at 10
	}
	c := KMeans1D(xs, 2, rng)
	if len(c) != 2 {
		t.Fatalf("got %d centroids, want 2", len(c))
	}
	if math.Abs(c[0]) > 0.5 || math.Abs(c[1]-10) > 0.5 {
		t.Errorf("centroids = %v, want ≈ [0, 10]", c)
	}
}

func TestKMeans1DFewerDistinctThanK(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2}
	c := KMeans1D(xs, 5, rand.New(rand.NewSource(1)))
	if len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Errorf("centroids = %v, want [1 2]", c)
	}
}

func TestKMeans1DEmpty(t *testing.T) {
	if c := KMeans1D(nil, 3, rand.New(rand.NewSource(1))); c != nil {
		t.Errorf("centroids of empty input = %v, want nil", c)
	}
}

func TestKMeans1DInvalidKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KMeans1D([]float64{1}, 0, rand.New(rand.NewSource(1)))
}

// Property: centroids are sorted, within the data range, and there are
// min(k, distinct) of them.
func TestKMeans1DProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		k := 1 + r.Intn(8)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		c := KMeans1D(xs, k, r)
		if !sort.Float64sAreSorted(c) {
			return false
		}
		nd := len(distinctSorted(xs))
		wantLen := k
		if nd < k {
			wantLen = nd
		}
		if len(c) != wantLen {
			return false
		}
		lo, hi := Min(xs), Max(xs)
		for _, v := range c {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDistinctSorted(t *testing.T) {
	got := distinctSorted([]float64{3, 1, 3, 2, 1})
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("distinct = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("distinct[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
