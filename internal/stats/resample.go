package stats

import (
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a percentile confidence interval for a statistic
// of xs by non-parametric bootstrap: resamples draws with replacement,
// applies stat, and takes the (1±level)/2 quantiles of the resampled
// distribution. Used to put uncertainty on the Table 1 AP summaries.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, level float64, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if resamples < 2 {
		panic("stats: BootstrapCI needs ≥ 2 resamples")
	}
	if level <= 0 || level >= 1 {
		panic("stats: BootstrapCI level must be in (0,1)")
	}
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	return QuantileSorted(vals, alpha), QuantileSorted(vals, 1-alpha)
}

// PearsonCorrelation returns the Pearson correlation coefficient of two
// equal-length samples (NaN for degenerate inputs).
func PearsonCorrelation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: correlation length mismatch")
	}
	if len(a) < 2 {
		return math.NaN()
	}
	ma, mb := Mean(a), Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return math.NaN()
	}
	return num / math.Sqrt(da*db)
}

// SpearmanCorrelation returns the Spearman rank correlation of two
// equal-length samples: the Pearson correlation of their mid-ranks
// (ties averaged). Useful for comparing explanation rankings.
func SpearmanCorrelation(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: correlation length mismatch")
	}
	return PearsonCorrelation(ranks(a), ranks(b))
}

// ranks assigns mid-ranks (1-based, ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return xs[order[i]] < xs[order[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		//lint:ignore floatcmp midrank tie grouping: only bit-identical values share a rank
		for j+1 < n && xs[order[j+1]] == xs[order[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[order[k]] = mid
		}
		i = j + 1
	}
	return out
}
