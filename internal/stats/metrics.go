// Package stats collects the statistical helpers used across GEF:
// regression/ranking metrics, summary statistics, Welch's t-test,
// Gaussian kernel density estimation, quantiles and one-dimensional
// k-means clustering.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// RMSE returns the root mean squared error between predictions and targets.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, target []float64) float64 {
	r := RMSE(pred, target)
	return r * r
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - target[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of pred w.r.t. target:
// 1 − Σ(y−ŷ)²/Σ(y−ȳ)². A constant target yields NaN.
func R2(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic("stats: R2 length mismatch")
	}
	if len(target) == 0 {
		return math.NaN()
	}
	mean := Mean(target)
	var ssRes, ssTot float64
	for i, y := range target {
		r := y - pred[i]
		ssRes += r * r
		d := y - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Accuracy returns the fraction of predictions whose sign-thresholded class
// (p ≥ 0.5) matches the binary target in {0, 1}.
func Accuracy(prob, target []float64) float64 {
	if len(prob) != len(target) {
		panic("stats: Accuracy length mismatch")
	}
	if len(prob) == 0 {
		return 0
	}
	correct := 0
	for i, p := range prob {
		cls := 0.0
		if p >= 0.5 {
			cls = 1
		}
		//lint:ignore floatcmp class labels are exactly 0 or 1 by contract; exact match is the definition of accuracy
		if cls == target[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(prob))
}

// LogLoss returns the mean binary cross-entropy of probabilities prob
// against targets in {0, 1}. Probabilities are clipped to (ε, 1−ε).
func LogLoss(prob, target []float64) float64 {
	if len(prob) != len(target) {
		panic("stats: LogLoss length mismatch")
	}
	if len(prob) == 0 {
		return 0
	}
	const eps = 1e-12
	var s float64
	for i, p := range prob {
		p = math.Min(math.Max(p, eps), 1-eps)
		if target[i] >= 0.5 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(prob))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the four summary statistics the paper reports in Table 1.
type Summary struct {
	Mean, SD, Min, Max float64
}

// Summarize computes mean, sample SD, min and max of xs.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), SD: StdDev(xs), Min: Min(xs), Max: Max(xs)}
}

// AveragePrecision computes the ranking Average Precision of a scored
// ranking against a set of relevant item indices. scores[i] is the score
// of item i; relevant marks which items are relevant. Items are ranked by
// decreasing score (ties broken by index for determinism), and
// AP = (1/|relevant|) Σ_k precision@k over the ranks k of relevant items.
func AveragePrecision(scores []float64, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		//lint:ignore floatcmp exact tie-break in a sort comparator keeps the ordering total and deterministic
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	var hits int
	var sum float64
	for rank, idx := range order {
		if relevant[idx] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	return sum / float64(len(relevant))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// The input need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is like Quantile but assumes xs is already sorted
// ascending, avoiding the copy.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: QuantileSorted of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	return quantileSorted(xs, q)
}

func quantileSorted(s []float64, q float64) float64 {
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
