package experiments

import (
	"math"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"RMSE by strategy and K": "rmse_by_strategy_and_k",
		"s(x1) learned":          "s_x1__learned",
		"Table 1":                "table_1",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f4(1.23456789) != "1.2346" {
		t.Errorf("f4 = %q", f4(1.23456789))
	}
	if f3(0.9865) != "0.987" { // rounds like the paper's 3-decimal tables
		t.Errorf("f3 = %q", f3(0.9865))
	}
	if itoa(42) != "42" {
		t.Errorf("itoa = %q", itoa(42))
	}
	if ftoa(0.5) != "0.5" {
		t.Errorf("ftoa = %q", ftoa(0.5))
	}
}

func TestLinspaceHelpers(t *testing.T) {
	v := linspace(2, 4, 3)
	if len(v) != 3 || v[0] != 2 || v[1] != 3 || v[2] != 4 {
		t.Errorf("linspace = %v", v)
	}
	single := linspace(0, 10, 1)
	if len(single) != 1 || single[0] != 5 {
		t.Errorf("linspace n=1 = %v", single)
	}
	s := sortedCopy([]float64{3, 1, 2})
	if s[0] != 1 || s[2] != 3 {
		t.Errorf("sortedCopy = %v", s)
	}
}

func TestPad(t *testing.T) {
	if pad("ab", 5) != "ab   " {
		t.Errorf("pad = %q", pad("ab", 5))
	}
	if pad("abcdef", 3) != "abcdef" {
		t.Errorf("pad should not truncate: %q", pad("abcdef", 3))
	}
}

func TestSizesForScales(t *testing.T) {
	q := sizesFor(Quick)
	p := sizesFor(Paper)
	if p.synthTrees <= q.synthTrees || p.dstarN <= q.dstarN {
		t.Error("paper scale should dominate quick scale")
	}
	if p.fig6Triples != 120 {
		t.Errorf("paper must evaluate all 120 interaction sets, got %d", p.fig6Triples)
	}
	if p.dstarN != 100000 {
		t.Errorf("paper |D*| = %d, want the paper's 100000", p.dstarN)
	}
	if p.fig4K != 12000 || p.fig9K != 4500 || p.fig10K != 800 {
		t.Errorf("paper K settings diverge from the paper: %d/%d/%d", p.fig4K, p.fig9K, p.fig10K)
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != Quick || p.Seed != 1 {
		t.Errorf("defaults = %+v", p)
	}
}

func TestCorrelationHelper(t *testing.T) {
	a := []float64{1, 2, 3}
	if got := correlation(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("correlation(a,a) = %v", got)
	}
	if got := correlation(a, []float64{5, 5, 5}); got != 0 {
		t.Errorf("correlation with constant = %v, want 0", got)
	}
}

func TestSweepCacheReuse(t *testing.T) {
	// fig6 and table1 share the expensive interaction sweep: after one
	// runs, the cache must hold the (scale, seed) entry so the other
	// reuses it (verified indirectly by identical AP populations).
	p := Params{Scale: Quick, Seed: 77}
	z := sizesFor(p.Scale)
	z.fig6Triples = 2
	z.fig6Trees = 20
	z.synthRows = 800
	z.hstatSample = 20
	a1, used1, err := interactionSweep(p, z)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	a2, used2, err := interactionSweep(p, z)
	if err != nil {
		t.Fatalf("cached sweep: %v", err)
	}
	if used1 != used2 {
		t.Fatalf("used %d vs %d", used1, used2)
	}
	for s, aps := range a1 {
		for i := range aps {
			if a2[s][i] != aps[i] {
				t.Fatal("cache returned different APs")
			}
		}
	}
}

func TestDistinctCountHelper(t *testing.T) {
	if got := distinctCount([]float64{1, 1, 2, 3, 3}); got != 3 {
		t.Errorf("distinctCount = %d, want 3", got)
	}
	if got := distinctCount(nil); got != 0 {
		t.Errorf("distinctCount(nil) = %d", got)
	}
}
