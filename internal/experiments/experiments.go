// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–§5). Each experiment is registered under the paper's
// identifier (fig2 … fig13, table1, table2), runs at either of two
// scales — "quick" (CI-sized, used by the benchmark harness) or "paper"
// (the publication parameters) — and emits the same rows/series the paper
// reports as aligned text tables plus optional CSV files.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Scale selects experiment sizing.
type Scale string

const (
	// Quick shrinks datasets, forests and grids to run in seconds.
	Quick Scale = "quick"
	// Paper uses the publication's parameters.
	Paper Scale = "paper"
)

// Params configures one experiment run.
type Params struct {
	Scale  Scale
	Seed   int64
	OutDir string // when non-empty, tables and series are also dumped as CSV
	// Family restricts family-aware experiments (extra-families) to a
	// comma-separated subset of the registered explainer families; empty
	// means all of them. Experiments that fit a single fixed surrogate
	// ignore it.
	Family string
	// Ctx carries the run's cancellation/deadline context; nil means
	// context.Background(). Use Context() to read it.
	Ctx context.Context
}

// Context returns the run's context, defaulting to Background so
// experiments written before deadline support keep working unchanged.
func (p Params) Context() context.Context {
	if p.Ctx == nil {
		return context.Background()
	}
	return p.Ctx
}

func (p Params) withDefaults() Params {
	if p.Scale == "" {
		p.Scale = Quick
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Table is one table of results (rows of formatted cells).
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Series is one plotted line/scatter of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
	Series []Series
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params) (*Report, error)
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig2", Title: "Toy additive dataset fitted by a GAM", Run: RunFig2},
		{ID: "fig3", Title: "Sampling strategies on a sigmoid feature's thresholds", Run: RunFig3},
		{ID: "fig4", Title: "GEF component reconstruction on D'", Run: RunFig4},
		{ID: "fig5", Title: "RMSE vs K per sampling strategy on D'", Run: RunFig5},
		{ID: "fig6", Title: "Interaction detection AP across interaction sets", Run: RunFig6},
		{ID: "table1", Title: "AP summary per interaction strategy (+ Welch's t)", Run: RunTable1},
		{ID: "table2", Title: "R² fidelity of forest and GAM on D' and D''", Run: RunTable2},
		{ID: "fig7", Title: "Superconductivity: RMSE grid over |F'| × |F''|", Run: RunFig7},
		{ID: "fig8", Title: "Superconductivity: RMSE vs K per sampling strategy", Run: RunFig8},
		{ID: "fig9", Title: "Superconductivity: GEF splines vs SHAP dependence", Run: RunFig9},
		{ID: "fig10", Title: "Census: GEF splines vs SHAP dependence", Run: RunFig10},
		{ID: "fig11", Title: "Superconductivity: local GEF explanation", Run: RunFig11},
		{ID: "fig12", Title: "Superconductivity: local SHAP explanation", Run: RunFig12},
		{ID: "fig13", Title: "Superconductivity: local LIME explanation", Run: RunFig13},
		// Extensions beyond the paper (see DESIGN.md ablations).
		{ID: "extra-surrogates", Title: "GEF GAM vs distilled-tree surrogate fidelity", Run: RunExtraSurrogates},
		{ID: "extra-auto", Title: "AutoExplain component search trace", Run: RunExtraAuto},
		{ID: "extra-engine", Title: "Staged engine cold vs warm artifact-cache reuse", Run: RunExtraEngine},
		{ID: "extra-families", Title: "Explainer families: fidelity/latency across surrogates", Run: RunExtraFamilies},
		{ID: "extra-rf", Title: "GEF applied to a Random Forest", Run: RunExtraRandomForest},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// errWriter tracks the first error of a sequence of writes so report
// rendering fails loudly instead of producing silently truncated
// tables (the paper's numbers must not be reproduced from partial
// output).
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// Render writes the report as aligned text to w and, when p.OutDir is
// set, dumps each table and series as a CSV file. It returns the first
// write error.
func (r *Report) Render(w io.Writer, outDir string) error {
	ew := &errWriter{w: w}
	ew.printf("== %s — %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		ew.printf("   %s\n", n)
	}
	for _, t := range r.Tables {
		ew.printf("\n-- %s --\n", t.Name)
		writeAligned(ew, t)
		if outDir != "" {
			if err := writeTableCSV(outDir, r.ID, t); err != nil {
				return err
			}
		}
	}
	for _, s := range r.Series {
		if outDir != "" {
			if err := writeSeriesCSV(outDir, r.ID, s); err != nil {
				return err
			}
		}
	}
	if len(r.Series) > 0 {
		ew.printf("\n-- series --\n")
		for _, s := range r.Series {
			ew.printf("%-40s %d points", s.Name, len(s.X))
			if n := len(s.Y); n > 0 {
				ew.printf("  (y: first %.4g, last %.4g)", s.Y[0], s.Y[n-1])
			}
			ew.printf("\n")
		}
	}
	ew.printf("\n")
	return ew.err
}

func writeAligned(ew *errWriter, t Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		ew.printf("%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func writeTableCSV(dir, id string, t Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, slug(t.Name)))
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func writeSeriesCSV(dir, id string, s Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, slug(s.Name)))
	var b strings.Builder
	b.WriteString("x,y\n")
	for i := range s.X {
		b.WriteString(ftoa(s.X[i]) + "," + ftoa(s.Y[i]) + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func slug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}

// ftoa formats a float compactly for CSV cells.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// f4 formats with 4 decimals for table cells.
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// f3 formats with 3 decimals (the paper's Table 1/2 precision).
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// itoa formats an int.
func itoa(v int) string { return strconv.Itoa(v) }

// linspace returns n evenly spaced points over [lo, hi].
func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = (lo + hi) / 2
		return out
	}
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// sortedCopy returns an ascending copy of xs.
func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}
