package experiments

import (
	"fmt"
	"math"

	"gef/internal/core"
	"gef/internal/featsel"
	"gef/internal/gam"
	"gef/internal/lime"
	"gef/internal/sampling"
	"gef/internal/shap"
	"gef/internal/stats"
)

// RunFig7 reproduces Fig. 7: RMSE of the Superconductivity explainer over
// the grid of univariate (|F′|) × bivariate (|F″|) component counts,
// with All-Thresholds sampling and Count-Path interactions (the paper's
// setting for this figure). D* is generated once over the maximal feature
// set so that RMSE values are comparable across cells; each cell fits a
// GAM restricted to its top-|F′| splines and top-|F″| tensor terms.
func RunFig7(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	maxSplines := z.fig7Splines[len(z.fig7Splines)-1]
	features := featsel.TopFeatures(f, maxSplines)
	domains, err := sampling.BuildDomains(f, features, sampling.Config{
		Strategy: sampling.AllThresholds, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	dstar := sampling.Generate(f, domains, z.realDstarN, p.Seed+11)
	train, test := dstar.Split(0.2, p.Seed+12)
	pairs, err := featsel.RankInteractions(f, features, featsel.CountPath, nil)
	if err != nil {
		return nil, err
	}
	thresholds := f.ThresholdsByFeature()

	r := &Report{ID: "fig7", Title: "Superconductivity: RMSE grid over |F'| × |F''|"}
	tab := Table{Name: "RMSE heat grid", Header: []string{"splines \\ interactions"}}
	for _, ni := range z.fig7Inters {
		tab.Header = append(tab.Header, itoa(ni))
	}
	for _, ns := range z.fig7Splines {
		row := []string{itoa(ns)}
		for _, ni := range z.fig7Inters {
			spec := gam.Spec{Link: gam.Identity}
			inSel := map[int]bool{}
			for _, feat := range features[:ns] {
				inSel[feat] = true
				kind := gam.Spline
				if distinctCount(thresholds[feat]) < 10 {
					kind = gam.Factor
				}
				spec.Terms = append(spec.Terms, gam.TermSpec{Kind: kind, Feature: feat})
			}
			added := 0
			for _, pr := range pairs {
				if added == ni {
					break
				}
				if inSel[pr.I] && inSel[pr.J] { // heredity within the current F′
					spec.Terms = append(spec.Terms, gam.TermSpec{
						Kind: gam.Tensor, Feature: pr.I, Feature2: pr.J,
					})
					added++
				}
			}
			if ni > 0 && added < ni {
				row = append(row, "-") // not enough candidate pairs at this |F′|
				continue
			}
			m, err := gam.Fit(spec, train.X, train.Y, gam.Options{Lambdas: z.lambdas})
			if err != nil {
				return nil, err
			}
			row = append(row, f4(stats.RMSE(m.PredictBatch(test.X), test.Y)))
		}
		tab.AddRow(row...)
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		"paper finding: 7 splines reach within ≈5% of the best; adding 8 interactions improves ≈2% more")
	return r, nil
}

func distinctCount(sorted []float64) int {
	c := 0
	for i, v := range sorted {
		//lint:ignore floatcmp distinct-count over a sorted column; duplicates are bit-identical
		if i == 0 || v != sorted[i-1] {
			c++
		}
	}
	return c
}

// RunFig8 reproduces Fig. 8: Superconductivity RMSE for each sampling
// strategy as K varies, at 7 splines / 0 interactions.
func RunFig8(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig8", Title: "Superconductivity: RMSE vs K per sampling strategy"}
	tab := Table{Name: "RMSE by strategy and K", Header: []string{"strategy", "K", "RMSE", "fidelity R²"}}

	base, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 7, NumSamples: z.realDstarN,
		Sampling: sampling.Config{Strategy: sampling.AllThresholds},
		GAM:      gam.Options{Lambdas: z.lambdas},
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tab.AddRow(string(sampling.AllThresholds), "-", f4(base.Fidelity.RMSE), f4(base.Fidelity.R2))

	for _, s := range []sampling.Strategy{sampling.KQuantile, sampling.EquiWidth, sampling.KMeans, sampling.EquiSize} {
		var xs, ys []float64
		for _, k := range z.fig8Ks {
			e, err := core.ExplainCtx(p.Context(), f, core.Config{
				NumUnivariate: 7, NumSamples: z.realDstarN,
				Sampling: sampling.Config{Strategy: s, K: k},
				GAM:      gam.Options{Lambdas: z.lambdas},
				Seed:     p.Seed,
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(string(s), itoa(k), f4(e.Fidelity.RMSE), f4(e.Fidelity.R2))
			xs = append(xs, float64(k))
			ys = append(ys, e.Fidelity.RMSE)
		}
		r.Series = append(r.Series, Series{Name: "rmse " + string(s), X: xs, Y: ys})
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// superconExplanation builds the fixed Fig. 9/11 configuration: 7
// splines, 0 interactions, Equi-Size sampling with the scale's K.
func superconExplanation(p Params, z sizes) (*core.Explanation, [][]float64, error) {
	f, train, _, err := superconForest(p, z)
	if err != nil {
		return nil, nil, err
	}
	e, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 7, NumSamples: z.realDstarN,
		Sampling: sampling.Config{Strategy: sampling.EquiSize, K: z.fig9K},
		GAM:      gam.Options{Lambdas: z.lambdas},
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	sample := train.X
	if len(sample) > 200 {
		sample = sample[:200]
	}
	return e, sample, nil
}

// RunFig9 reproduces Fig. 9: the top Superconductivity GEF splines (with
// 95% CIs) next to the SHAP dependence scatter of the same features.
func RunFig9(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	e, sample, err := superconExplanation(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig9", Title: "Superconductivity: GEF splines vs SHAP dependence"}
	r.Notes = append(r.Notes, fmt.Sprintf("fidelity: RMSE %.4f, R² %.4f", e.Fidelity.RMSE, e.Fidelity.R2))
	tab := Table{Name: "top splines", Header: []string{"rank", "feature", "curve range", "max |CI half-width|"}}
	top := e.Features
	if len(top) > 4 {
		top = top[:4]
	}
	for rank, feat := range top {
		ti := termIndexForFeature(e.Model, feat)
		if ti < 0 {
			continue
		}
		lo, hi := e.Model.TermRange(ti)
		grid := linspace(lo, hi, 41)
		c, err := e.Model.TermCurve(ti, grid, 0.95)
		if err != nil {
			return nil, err
		}
		name := e.Forest.FeatureName(feat)
		var maxSE float64
		for _, se := range c.SE {
			if se > maxSE {
				maxSE = se
			}
		}
		tab.AddRow(itoa(rank+1), name,
			fmt.Sprintf("[%.3f, %.3f]", stats.Min(c.Y), stats.Max(c.Y)),
			f4(1.96*maxSE))
		r.Series = append(r.Series,
			Series{Name: "gef " + name, X: grid, Y: c.Y},
			Series{Name: "gef " + name + " lower", X: grid, Y: c.Lower},
			Series{Name: "gef " + name + " upper", X: grid, Y: c.Upper},
		)
		// SHAP dependence scatter of the same feature over the original
		// data sample (the paper's right-hand panels).
		xs, phis := shap.DependenceSeries(e.Forest, sample, feat)
		r.Series = append(r.Series, Series{Name: "shap " + name, X: xs, Y: phis})
	}
	r.Tables = append(r.Tables, tab)

	// Consistency check the paper argues qualitatively: the GEF spline and
	// the SHAP dependence trend of the top feature must correlate.
	if len(top) > 0 {
		feat := top[0]
		ti := termIndexForFeature(e.Model, feat)
		xs, phis := shap.DependenceSeries(e.Forest, sample, feat)
		var gefAt []float64
		x := make([]float64, e.Forest.NumFeatures)
		for i := range xs {
			x[feat] = xs[i]
			gefAt = append(gefAt, e.Model.TermValue(ti, x))
		}
		r.Notes = append(r.Notes, fmt.Sprintf("GEF-vs-SHAP correlation on top feature %s: %.3f",
			e.Forest.FeatureName(feat), correlation(gefAt, phis)))
	}
	return r, nil
}

// RunFig10 reproduces Fig. 10: the Census explainer (5 splines + 1
// interaction, K-Quantile sampling, logit link) and its SHAP comparison.
func RunFig10(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, train, test, err := censusForest(p, z)
	if err != nil {
		return nil, err
	}
	e, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate:       5,
		NumInteractions:     1,
		InteractionStrategy: featsel.CountPath,
		NumSamples:          z.realDstarN,
		Sampling:            sampling.Config{Strategy: sampling.KQuantile, K: z.fig10K},
		GAM:                 gam.Options{Lambdas: z.logitLambdas},
		Seed:                p.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig10", Title: "Census: GEF splines vs SHAP dependence"}
	r.Notes = append(r.Notes, fmt.Sprintf("fidelity on D*: RMSE %.4f, R² %.4f", e.Fidelity.RMSE, e.Fidelity.R2))

	// Probability-scale agreement on original data.
	gp := e.Model.PredictBatch(test.X)
	fp, err := f.PredictBatchCtx(p.Context(), test.X)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, fmt.Sprintf("probability agreement on original test data: RMSE %.4f", stats.RMSE(gp, fp)))

	sample := train.X
	if len(sample) > 150 {
		sample = sample[:150]
	}
	tab := Table{Name: "top terms", Header: []string{"rank", "term", "kind", "contribution range (log-odds)"}}
	for rank, feat := range e.Features {
		if rank >= 4 {
			break
		}
		ti := termIndexForFeature(e.Model, feat)
		if ti < 0 {
			continue
		}
		name := f.FeatureName(feat)
		spec := e.Model.Term(ti)
		var grid []float64
		if spec.Kind == gam.Factor {
			grid = e.Model.FactorTermLevels(ti)
		} else {
			lo, hi := e.Model.TermRange(ti)
			grid = linspace(lo, hi, 31)
		}
		c, err := e.Model.TermCurve(ti, grid, 0.95)
		if err != nil {
			return nil, err
		}
		tab.AddRow(itoa(rank+1), name, string(spec.Kind),
			fmt.Sprintf("[%.3f, %.3f]", stats.Min(c.Y), stats.Max(c.Y)))
		r.Series = append(r.Series, Series{Name: "gef " + name, X: grid, Y: c.Y})
		xs, phis := shap.DependenceSeries(f, sample, feat)
		r.Series = append(r.Series, Series{Name: "shap " + name, X: xs, Y: phis})
	}
	r.Tables = append(r.Tables, tab)

	// The paper's qualitative check: EducationNum positively correlated
	// with the output.
	eduFeat := -1
	for j := 0; j < f.NumFeatures; j++ {
		if f.FeatureName(j) == "education-num" {
			eduFeat = j
		}
	}
	if eduFeat >= 0 {
		if ti := termIndexForFeature(e.Model, eduFeat); ti >= 0 {
			lo, hi := e.Model.TermRange(ti)
			x := make([]float64, f.NumFeatures)
			x[eduFeat] = lo
			vLo := e.Model.TermValue(ti, x)
			x[eduFeat] = hi
			vHi := e.Model.TermValue(ti, x)
			r.Notes = append(r.Notes, fmt.Sprintf("education-num contribution: %.3f at %.0f → %.3f at %.0f (positive trend expected)",
				vLo, lo, vHi, hi))
		} else {
			r.Notes = append(r.Notes, "education-num not among the selected features at this scale")
		}
	}
	if len(e.Pairs) > 0 {
		pr := e.Pairs[0]
		r.Notes = append(r.Notes, fmt.Sprintf("selected interaction: (%s, %s)",
			f.FeatureName(pr.I), f.FeatureName(pr.J)))
	}
	return r, nil
}

// fig11Sample returns the fixed instance the local-explanation figures
// (11–13) all explain: the first test-sample row of the Superconductivity
// data.
func fig11Sample(p Params, z sizes) ([]float64, error) {
	_, _, test, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	return test.X[0], nil
}

// RunFig11 reproduces Fig. 11: the GEF local explanation of one sample —
// per-term contributions plus a zoomed spline window around the
// instance's feature values.
func RunFig11(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	e, _, err := superconExplanation(p, z)
	if err != nil {
		return nil, err
	}
	x, err := fig11Sample(p, z)
	if err != nil {
		return nil, err
	}
	le := e.ExplainInstance(x)
	r := &Report{ID: "fig11", Title: "Superconductivity: local GEF explanation"}
	r.Notes = append(r.Notes,
		fmt.Sprintf("forest output %.3f, GAM output %.3f, intercept %.3f",
			le.ForestOutput, le.GamPrediction, le.Intercept))
	tab := Table{Name: "per-term contributions", Header: []string{"term", "feature value", "contribution", "vs average"}}
	for _, c := range le.Contributions {
		name := e.Forest.FeatureName(c.Spec.Feature)
		direction := "above"
		if c.Value < 0 {
			direction = "below"
		}
		tab.AddRow(name, f4(x[c.Spec.Feature]), f4(c.Value), direction)
	}
	r.Tables = append(r.Tables, tab)

	// Zoomed spline windows: ±10% of the term range around the instance
	// value (the paper's "zoom-in on the spline" view).
	for _, c := range le.Contributions {
		ti := c.Term
		if c.Spec.Kind != gam.Spline {
			continue
		}
		lo, hi := e.Model.TermRange(ti)
		span := (hi - lo) * 0.1
		v := x[c.Spec.Feature]
		g := linspace(math.Max(lo, v-span), math.Min(hi, v+span), 21)
		curve, err := e.Model.TermCurve(ti, g, 0.95)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, Series{
			Name: "zoom " + e.Forest.FeatureName(c.Spec.Feature), X: g, Y: curve.Y,
		})
	}
	return r, nil
}

// RunFig12 reproduces Fig. 12: the SHAP local explanation (waterfall) of
// the same sample.
func RunFig12(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	x, err := fig11Sample(p, z)
	if err != nil {
		return nil, err
	}
	phi, base := shap.Values(f, x)
	r := &Report{ID: "fig12", Title: "Superconductivity: local SHAP explanation"}
	r.Notes = append(r.Notes, fmt.Sprintf("E[f(X)] = %.3f, f(x) = %.3f", base, f.RawPredict(x)))
	tab := Table{Name: "SHAP waterfall (top 8)", Header: []string{"feature", "value", "φ", "sign"}}
	for _, a := range shap.TopAttributions(phi, 8) {
		sign := "+"
		if a.Value < 0 {
			sign = "-"
		}
		tab.AddRow(f.FeatureName(a.Feature), f4(x[a.Feature]), f4(a.Value), sign)
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// RunFig13 reproduces Fig. 13: the LIME local explanation of the same
// sample with the reference defaults.
func RunFig13(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, train, _, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	x, err := fig11Sample(p, z)
	if err != nil {
		return nil, err
	}
	bg := train.X
	if len(bg) > 500 {
		bg = bg[:500]
	}
	nsamp := 5000
	if p.Scale == Quick {
		nsamp = 1000
	}
	le, err := lime.Explain(f.Predict, bg, x, lime.Config{NumSamples: nsamp, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig13", Title: "Superconductivity: local LIME explanation"}
	r.Notes = append(r.Notes, fmt.Sprintf("local surrogate R² = %.3f", le.R2))
	tab := Table{Name: "LIME weights (top 8)", Header: []string{"feature", "value", "weight", "sign"}}
	for _, fw := range le.Top(8) {
		sign := "+"
		if fw.Weight < 0 {
			sign = "-"
		}
		tab.AddRow(f.FeatureName(fw.Feature), f4(x[fw.Feature]), f4(fw.Weight), sign)
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// correlation returns the Pearson correlation of two equal-length series.
func correlation(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
