package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryCoversAllPaperResults(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "table1", "table2",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"extra-surrogates", "extra-auto", "extra-engine", "extra-families", "extra-rf"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Error("Lookup(fig5) failed")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup accepted unknown id")
	}
}

func TestRenderAlignedAndCSV(t *testing.T) {
	r := &Report{
		ID:    "demo",
		Title: "demo report",
		Notes: []string{"a note"},
		Tables: []Table{{
			Name:   "t",
			Header: []string{"col a", "b"},
			Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		}},
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := r.Render(&buf, dir); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo report") || !strings.Contains(out, "col a") {
		t.Errorf("render output missing content:\n%s", out)
	}
	// CSV files created.
	if _, err := os.Stat(filepath.Join(dir, "demo_t.csv")); err != nil {
		t.Errorf("table CSV missing: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo_s1.csv"))
	if err != nil {
		t.Fatalf("series CSV missing: %v", err)
	}
	if !strings.HasPrefix(string(data), "x,y\n1,3\n") {
		t.Errorf("series CSV content:\n%s", data)
	}
}

// runQuick executes an experiment at quick scale and sanity-checks the
// report shape.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	r, err := e.Run(Params{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("report ID %q, want %q", r.ID, id)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf, ""); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	return r
}

func TestFig2Quick(t *testing.T) {
	r := runQuick(t, "fig2")
	if len(r.Series) != 4 {
		t.Errorf("fig2 series = %d, want 4 (2 learned + 2 true)", len(r.Series))
	}
	// The learned components must match the generators closely.
	for _, row := range r.Tables[0].Rows {
		rmse := parseF(t, row[1])
		if rmse > 0.15 {
			t.Errorf("component %s RMSE %v too high", row[0], rmse)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	r := runQuick(t, "fig3")
	// One KDE series plus one rug per strategy.
	if len(r.Series) != 6 {
		t.Errorf("fig3 series = %d, want 6", len(r.Series))
	}
	// Density-following strategies concentrate points near the sigmoid
	// jump at 0.5; Equi-Width does not.
	share := map[string]float64{}
	for _, row := range r.Tables[0].Rows {
		share[row[0]] = parseF(t, row[4])
	}
	if share["k-quantile"] <= share["equi-width"] {
		t.Errorf("k-quantile share %v should exceed equi-width %v near the jump",
			share["k-quantile"], share["equi-width"])
	}
	if share["equi-size"] <= share["equi-width"] {
		t.Errorf("equi-size share %v should exceed equi-width %v near the jump",
			share["equi-size"], share["equi-width"])
	}
}

func TestFig4Quick(t *testing.T) {
	r := runQuick(t, "fig4")
	if len(r.Tables[0].Rows) != 5 {
		t.Fatalf("fig4 components = %d, want 5", len(r.Tables[0].Rows))
	}
	// Reconstruction quality: every component within loose tolerance,
	// most within tight tolerance (the paper notes margin artefacts).
	tight := 0
	for _, row := range r.Tables[0].Rows {
		rmse := parseF(t, row[2])
		if rmse > 0.5 {
			t.Errorf("component %s RMSE %v too high", row[0], rmse)
		}
		if rmse < 0.2 {
			tight++
		}
	}
	if tight < 3 {
		t.Errorf("only %d/5 components reconstructed tightly", tight)
	}
}

func TestFig5Quick(t *testing.T) {
	r := runQuick(t, "fig5")
	if len(r.Series) != 4 {
		t.Errorf("fig5 series = %d, want 4 strategies", len(r.Series))
	}
	// Every strategy × K must produce a finite positive RMSE.
	for _, row := range r.Tables[0].Rows {
		rmse := parseF(t, row[2])
		if rmse <= 0 || rmse > 10 {
			t.Errorf("row %v has implausible RMSE", row)
		}
	}
}

func TestFig6Table1Quick(t *testing.T) {
	r := runQuick(t, "fig6")
	if len(r.Series) != 4 {
		t.Fatalf("fig6 series = %d, want 4", len(r.Series))
	}
	for _, s := range r.Series {
		// AP values sorted descending in [0, 1].
		for i, v := range s.Y {
			if v < 0 || v > 1 {
				t.Fatalf("%s AP %v out of range", s.Name, v)
			}
			if i > 0 && v > s.Y[i-1]+1e-12 {
				t.Fatalf("%s not sorted descending", s.Name)
			}
		}
	}
	r1 := runQuick(t, "table1")
	if len(r1.Tables) != 3 {
		t.Fatalf("table1 should have the summary, the Welch table and the bootstrap CIs")
	}
	// Bootstrap CIs bracket the reported means.
	means := map[string]float64{}
	for i, h := range r1.Tables[0].Header[1:] {
		_ = i
		means[strings.ToLower(h)] = 0
	}
	for i, h := range r1.Tables[0].Header[1:] {
		means[strings.ToLower(h)] = parseF(t, r1.Tables[0].Rows[0][i+1])
	}
	for _, row := range r1.Tables[2].Rows {
		lo, hi := parseF(t, row[1]), parseF(t, row[2])
		m := means[strings.ToLower(row[0])]
		if m < lo-1e-9 || m > hi+1e-9 {
			t.Errorf("mean AP %v of %s outside bootstrap CI [%v, %v]", m, row[0], lo, hi)
		}
	}
	// Mean row: all strategies between the paper's min (0.216) floor and 1.
	mean := r1.Tables[0].Rows[0]
	for _, cell := range mean[1:] {
		v := parseF(t, cell)
		if v < 0.15 || v > 1 {
			t.Errorf("mean AP %v implausible", v)
		}
	}
	// Welch p-values in [0, 1].
	for _, row := range r1.Tables[1].Rows {
		pv := parseF(t, row[3])
		if pv < 0 || pv > 1 {
			t.Errorf("Welch p = %v", pv)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	r := runQuick(t, "table2")
	rows := r.Tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("table2 rows = %d, want 4", len(rows))
	}
	// Forest R² vs y high on both datasets; GAM close behind on D′.
	forestDp := parseF(t, rows[0][3])
	gamDpVsT := parseF(t, rows[1][2])
	gamDpVsY := parseF(t, rows[1][3])
	if forestDp < 0.9 {
		t.Errorf("forest R² on D' = %v", forestDp)
	}
	if gamDpVsT < 0.9 {
		t.Errorf("GAM vs T on D' = %v, want ≥ 0.9 (paper 0.986)", gamDpVsT)
	}
	if gamDpVsY < 0.9 {
		t.Errorf("GAM vs y on D' = %v (paper 0.982)", gamDpVsY)
	}
	// D″ fidelity is allowed to drop (paper: 0.938) but must stay strong.
	gamDppVsT := parseF(t, rows[3][2])
	if gamDppVsT < 0.8 {
		t.Errorf("GAM vs T on D'' = %v, want ≥ 0.8 (paper 0.938)", gamDppVsT)
	}
}

func TestFig7Quick(t *testing.T) {
	r := runQuick(t, "fig7")
	tab := r.Tables[0]
	if len(tab.Rows) != 5 { // quick scale: splines {1,3,5,7,9}
		t.Fatalf("fig7 rows = %d, want 5", len(tab.Rows))
	}
	// More splines must reduce RMSE: compare 1-spline vs 9-spline at 0
	// interactions.
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last >= first {
		t.Errorf("RMSE with 9 splines (%v) should beat 1 spline (%v)", last, first)
	}
}

func TestFig8Quick(t *testing.T) {
	r := runQuick(t, "fig8")
	if len(r.Series) != 4 {
		t.Errorf("fig8 series = %d, want 4", len(r.Series))
	}
}

func TestFig9Quick(t *testing.T) {
	r := runQuick(t, "fig9")
	if len(r.Tables[0].Rows) == 0 {
		t.Fatal("fig9 produced no splines")
	}
	// The GEF/SHAP consistency note must report a clearly positive
	// correlation (the paper's "explanations are consistent" claim).
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "correlation") {
			found = true
			parts := strings.Fields(n)
			corr := parseF(t, parts[len(parts)-1])
			if corr < 0.5 {
				t.Errorf("GEF-vs-SHAP correlation %v, want ≥ 0.5", corr)
			}
		}
	}
	if !found {
		t.Error("fig9 missing the consistency note")
	}
}

func TestFig10Quick(t *testing.T) {
	r := runQuick(t, "fig10")
	if len(r.Tables[0].Rows) == 0 {
		t.Fatal("fig10 produced no terms")
	}
	// The education-num trend note must be present and positive when the
	// feature is selected.
	for _, n := range r.Notes {
		if strings.Contains(n, "education-num contribution") {
			// Parse "... %.3f at lo → %.3f at hi ..."
			fields := strings.Fields(n)
			vLo := parseF(t, strings.TrimSuffix(fields[2], ","))
			var vHi float64
			for i, tok := range fields {
				if tok == "→" {
					vHi = parseF(t, fields[i+1])
				}
			}
			if vHi <= vLo {
				t.Errorf("education-num trend not positive: %v → %v", vLo, vHi)
			}
		}
	}
}

func TestFig11To13Quick(t *testing.T) {
	r11 := runQuick(t, "fig11")
	if len(r11.Tables[0].Rows) != 7 {
		t.Errorf("fig11 contributions = %d, want 7 terms", len(r11.Tables[0].Rows))
	}
	r12 := runQuick(t, "fig12")
	if len(r12.Tables[0].Rows) != 8 {
		t.Errorf("fig12 waterfall rows = %d, want 8", len(r12.Tables[0].Rows))
	}
	r13 := runQuick(t, "fig13")
	if len(r13.Tables[0].Rows) != 8 {
		t.Errorf("fig13 weight rows = %d, want 8", len(r13.Tables[0].Rows))
	}
	// The three explanations address the same instance: the feature value
	// shown for any shared feature must agree between fig12 and fig13.
	vals12 := map[string]string{}
	for _, row := range r12.Tables[0].Rows {
		vals12[row[0]] = row[1]
	}
	for _, row := range r13.Tables[0].Rows {
		if v, ok := vals12[row[0]]; ok && v != row[1] {
			t.Errorf("feature %s value differs between SHAP (%s) and LIME (%s)", row[0], v, row[1])
		}
	}
}

func TestExtrasQuick(t *testing.T) {
	rs := runQuick(t, "extra-surrogates")
	// Row 0 is the GAM; all tree rows must have lower R².
	gamR2 := parseF(t, rs.Tables[0].Rows[0][3])
	for _, row := range rs.Tables[0].Rows[1:3] { // readable trees (8, 16 leaves)
		if treeR2 := parseF(t, row[3]); treeR2 >= gamR2 {
			t.Errorf("readable tree (%s) R² %v ≥ GAM R² %v", row[1], treeR2, gamR2)
		}
	}

	ra := runQuick(t, "extra-auto")
	if len(ra.Tables[0].Rows) < 2 {
		t.Error("auto trace too short")
	}

	rr := runQuick(t, "extra-rf")
	gamVsT := parseF(t, rr.Tables[0].Rows[1][1])
	if gamVsT < 0.75 {
		t.Errorf("GEF on RF: Γ vs T R² = %v", gamVsT)
	}
}

// TestExtraFamiliesQuick drives the family-comparison experiment at
// quick scale: every registered family must appear with measured
// fidelity, the cross-family cache reuse it asserts internally must
// hold, BENCH_family.json must land in OutDir with the three
// first-party families, and the Family filter must work.
func TestExtraFamiliesQuick(t *testing.T) {
	e, ok := Lookup("extra-families")
	if !ok {
		t.Fatal("extra-families not registered")
	}
	dir := t.TempDir()
	r, err := e.Run(Params{Scale: Quick, Seed: 1, OutDir: dir})
	if err != nil {
		t.Fatalf("extra-families: %v", err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("comparison table has %d rows, want 5 families: %v", len(rows), rows)
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row[0]] = true
		if rmse := parseF(t, row[2]); rmse < 0 || rmse != rmse {
			t.Errorf("family %s RMSE %v is not a measurement", row[0], rmse)
		}
	}
	for _, fam := range []string{"gam", "rules", "smoother", "lime", "distill"} {
		if !seen[fam] {
			t.Errorf("family %s missing from the comparison table", fam)
		}
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_family.json"))
	if err != nil {
		t.Fatalf("BENCH_family.json not written: %v", err)
	}
	for _, fam := range []string{`"gam"`, `"rules"`, `"smoother"`} {
		if !bytes.Contains(blob, []byte(fam)) {
			t.Errorf("BENCH_family.json missing %s", fam)
		}
	}

	sub, err := e.Run(Params{Scale: Quick, Seed: 1, Family: "gam,rules"})
	if err != nil {
		t.Fatalf("family filter: %v", err)
	}
	if n := len(sub.Tables[0].Rows); n != 2 {
		t.Errorf("filtered run has %d rows, want 2", n)
	}
	if _, err := e.Run(Params{Scale: Quick, Seed: 1, Family: "nope"}); err == nil {
		t.Error("unknown family accepted by the filter")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
