package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"gef/internal/core"
	"gef/internal/dataset"
	"gef/internal/featsel"
	"gef/internal/gam"
	"gef/internal/gbdt"
	"gef/internal/sampling"
	"gef/internal/stats"
)

// RunFig2 reproduces the paper's Fig. 2 toy: a two-feature additive
// dataset (linear + sinusoidal) fitted by a GAM whose two learned
// components recover the generators.
func RunFig2(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	ds := dataset.Fig2Toy(z.synthRows, 0.1, p.Seed+500)
	m, err := gam.Fit(gam.Spec{Terms: []gam.TermSpec{
		{Kind: gam.Spline, Feature: 0},
		{Kind: gam.Spline, Feature: 1, NumBasis: 16},
	}}, ds.X, ds.Y, gam.Options{Lambdas: z.lambdas})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig2", Title: "Toy additive dataset fitted by a GAM"}
	grid := linspace(0.02, 0.98, 49)
	names := []string{"s1 (linear)", "s2 (sinusoid)"}
	truth := []func(float64) float64{
		func(v float64) float64 { return v },
		func(v float64) float64 { return math.Sin(2 * math.Pi * v) },
	}
	tab := Table{Name: "component reconstruction", Header: []string{"component", "RMSE vs true (centered)"}}
	for ti := 0; ti < 2; ti++ {
		c, err := m.TermCurve(ti, grid, 0.95)
		if err != nil {
			return nil, err
		}
		// Center the true generator over the grid for comparison.
		tvals := make([]float64, len(grid))
		for i, v := range grid {
			tvals[i] = truth[ti](v)
		}
		tm := stats.Mean(tvals)
		for i := range tvals {
			tvals[i] -= tm
		}
		tab.AddRow(names[ti], f4(stats.RMSE(c.Y, tvals)))
		r.Series = append(r.Series,
			Series{Name: names[ti] + " learned", X: grid, Y: c.Y},
			Series{Name: names[ti] + " true", X: grid, Y: tvals},
		)
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// RunFig3 reproduces Fig. 3: the five sampling strategies applied to the
// thresholds of a forest trained on the sigmoid toy, against the
// threshold KDE.
func RunFig3(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	ds := dataset.SigmoidToy(z.synthRows, 0.05, p.Seed+600)
	f, err := gbdt.Train(ds, gbdt.Params{
		NumTrees: z.synthTrees, NumLeaves: 8, LearningRate: 0.1, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	thresholds := f.ThresholdsByFeature()[0]
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("fig3: forest produced no thresholds")
	}
	r := &Report{ID: "fig3", Title: "Sampling strategies on a sigmoid feature's thresholds"}
	r.Notes = append(r.Notes, fmt.Sprintf("forest has %d thresholds on the sigmoid feature", len(thresholds)))

	// Threshold density (the paper's KDE backdrop).
	kde := stats.NewKDE(thresholds, 0)
	lo, hi := thresholds[0], thresholds[len(thresholds)-1]
	kx, ky := kde.Grid(lo, hi, 101)
	r.Series = append(r.Series, Series{Name: "threshold KDE", X: kx, Y: ky})

	const k = 20
	tab := Table{Name: "sampled domains (K=20)", Header: []string{"strategy", "points", "min", "max", "share in [0.4,0.6]"}}
	for _, s := range sampling.Strategies {
		d, err := sampling.BuildDomains(f, []int{0}, sampling.Config{Strategy: s, K: k, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		pts := sortedCopy(d.Points[0])
		dense := 0
		for _, v := range pts {
			if v >= 0.4 && v <= 0.6 {
				dense++
			}
		}
		tab.AddRow(string(s), itoa(len(pts)), f4(pts[0]), f4(pts[len(pts)-1]),
			f4(float64(dense)/float64(len(pts))))
		rug := make([]float64, len(pts))
		r.Series = append(r.Series, Series{Name: "rug " + string(s), X: pts, Y: rug})
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// RunFig4 reproduces Fig. 4: GEF over the forest trained on D′ with
// |F′| = 5, |F″| = 0 and Equi-Size sampling; the five learned splines
// against the true generator functions.
func RunFig4(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	e, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 5,
		NumSamples:    z.dstarN,
		Sampling:      sampling.Config{Strategy: sampling.EquiSize, K: z.fig4K},
		GAM:           gam.Options{Lambdas: z.lambdas},
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig4", Title: "GEF component reconstruction on D'"}
	r.Notes = append(r.Notes,
		fmt.Sprintf("fidelity on held-out D*: RMSE %.4f, R² %.4f", e.Fidelity.RMSE, e.Fidelity.R2))
	grid := linspace(0.03, 0.97, 48)
	tab := Table{Name: "per-component reconstruction", Header: []string{"feature", "importance rank", "RMSE vs generator (centered)"}}
	for rank, feat := range e.Features {
		ti := termIndexForFeature(e.Model, feat)
		if ti < 0 {
			continue
		}
		c, err := e.Model.TermCurve(ti, grid, 0.95)
		if err != nil {
			return nil, err
		}
		tvals := make([]float64, len(grid))
		for i, v := range grid {
			tvals[i] = dataset.GPrimeComponent(feat, v)
		}
		tm := stats.Mean(tvals)
		for i := range tvals {
			tvals[i] -= tm
		}
		tab.AddRow(fmt.Sprintf("x%d", feat+1), itoa(rank+1), f4(stats.RMSE(c.Y, tvals)))
		r.Series = append(r.Series,
			Series{Name: fmt.Sprintf("s(x%d) learned", feat+1), X: grid, Y: c.Y},
			Series{Name: fmt.Sprintf("s(x%d) true", feat+1), X: grid, Y: tvals},
			Series{Name: fmt.Sprintf("s(x%d) ci-width", feat+1), X: grid, Y: c.SE},
		)
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

func termIndexForFeature(m *gam.Model, feat int) int {
	for i := 0; i < m.NumTerms(); i++ {
		t := m.Term(i)
		if t.Kind != gam.Tensor && t.Feature == feat {
			return i
		}
	}
	return -1
}

// RunFig5 reproduces Fig. 5: RMSE of the explainer (against the forest,
// on held-out D*) for each sampling strategy as K varies, on D′.
func RunFig5(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig5", Title: "RMSE vs K per sampling strategy on D'"}
	tab := Table{Name: "RMSE by strategy and K", Header: []string{"strategy", "K", "RMSE", "fidelity R²"}}

	// All-Thresholds is the K-independent baseline (one row).
	base, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 5, NumSamples: z.dstarN,
		Sampling: sampling.Config{Strategy: sampling.AllThresholds},
		GAM:      gam.Options{Lambdas: z.lambdas},
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tab.AddRow(string(sampling.AllThresholds), "-", f4(base.Fidelity.RMSE), f4(base.Fidelity.R2))
	r.Notes = append(r.Notes, fmt.Sprintf("All-Thresholds baseline RMSE: %.4f", base.Fidelity.RMSE))

	for _, s := range []sampling.Strategy{sampling.KQuantile, sampling.EquiWidth, sampling.KMeans, sampling.EquiSize} {
		var xs, ys []float64
		for _, k := range z.fig5Ks {
			e, err := core.ExplainCtx(p.Context(), f, core.Config{
				NumUnivariate: 5, NumSamples: z.dstarN,
				Sampling: sampling.Config{Strategy: s, K: k},
				GAM:      gam.Options{Lambdas: z.lambdas},
				Seed:     p.Seed,
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(string(s), itoa(k), f4(e.Fidelity.RMSE), f4(e.Fidelity.R2))
			xs = append(xs, float64(k))
			ys = append(ys, e.Fidelity.RMSE)
		}
		r.Series = append(r.Series, Series{Name: "rmse " + string(s), X: xs, Y: ys})
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// sweepCache memoizes the expensive Fig. 6 / Table 1 workload within a
// process so the two experiments (which report the same AP population)
// train the 120 forests once.
var sweepCache sync.Map // key string → sweepResult

type sweepResult struct {
	aps  map[featsel.InteractionStrategy][]float64
	used int
}

// interactionSweep runs the Fig. 6 / Table 1 workload: for a set of
// interaction triples Π, train a forest on g″_Π and score all 10
// candidate pairs with each of the four strategies, recording the AP of
// each ranking against Π. Results are cached per (scale, seed).
func interactionSweep(p Params, z sizes) (map[featsel.InteractionStrategy][]float64, int, error) {
	key := fmt.Sprintf("%s/%d", p.Scale, p.Seed)
	if v, ok := sweepCache.Load(key); ok {
		r := v.(sweepResult)
		return r.aps, r.used, nil
	}
	aps, used, err := interactionSweepUncached(p, z)
	if err == nil {
		sweepCache.Store(key, sweepResult{aps: aps, used: used})
	}
	return aps, used, err
}

func interactionSweepUncached(p Params, z sizes) (map[featsel.InteractionStrategy][]float64, int, error) {
	allPairs := dataset.AllInteractionPairs(dataset.GPrimeDim)
	triples := dataset.AllInteractionTriples(allPairs)
	step := 1
	if z.fig6Triples < len(triples) {
		step = len(triples) / z.fig6Triples
	}
	aps := make(map[featsel.InteractionStrategy][]float64)
	features := []int{0, 1, 2, 3, 4}
	used := 0
	for i := 0; i < len(triples) && used < z.fig6Triples; i += step {
		tr := triples[i]
		truth := [][2]int{tr[0], tr[1], tr[2]}
		f, train, _, err := gdoubleForest(p, z, truth, z.fig6Trees)
		if err != nil {
			return nil, 0, err
		}
		sample := train.X
		if len(sample) > z.hstatSample {
			sample = sample[:z.hstatSample]
		}
		rel := map[int]bool{}
		for pi, cand := range allPairs {
			for _, t := range truth {
				if cand == t {
					rel[pi] = true
				}
			}
		}
		for _, s := range featsel.InteractionStrategies {
			ranked, err := featsel.RankInteractions(f, features, s, sample)
			if err != nil {
				return nil, 0, err
			}
			// Scores in the candidate enumeration order of allPairs.
			scores := make([]float64, len(allPairs))
			for _, rp := range ranked {
				for pi, cand := range allPairs {
					if cand[0] == rp.I && cand[1] == rp.J {
						scores[pi] = rp.Score
					}
				}
			}
			aps[s] = append(aps[s], stats.AveragePrecision(scores, rel))
		}
		used++
	}
	return aps, used, nil
}

// RunFig6 reproduces Fig. 6: per-strategy AP over the interaction sets,
// sorted descending (each strategy sorted independently, as the paper
// plots them).
func RunFig6(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	aps, used, err := interactionSweep(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig6", Title: "Interaction detection AP across interaction sets"}
	r.Notes = append(r.Notes, fmt.Sprintf("%d of 120 interaction sets evaluated at scale %q", used, p.Scale))
	for _, s := range featsel.InteractionStrategies {
		ys := sortedCopy(aps[s])
		// Descending, as in the paper's figure.
		for i, j := 0, len(ys)-1; i < j; i, j = i+1, j-1 {
			ys[i], ys[j] = ys[j], ys[i]
		}
		xs := make([]float64, len(ys))
		for i := range xs {
			xs[i] = float64(i)
		}
		r.Series = append(r.Series, Series{Name: "AP " + string(s), X: xs, Y: ys})
	}
	tab := Table{Name: "AP by strategy (sorted desc, first 10)", Header: []string{"rank", "pair-gain", "count-path", "gain-path", "h-stat"}}
	sorted := map[featsel.InteractionStrategy][]float64{}
	for _, s := range featsel.InteractionStrategies {
		ys := sortedCopy(aps[s])
		for i, j := 0, len(ys)-1; i < j; i, j = i+1, j-1 {
			ys[i], ys[j] = ys[j], ys[i]
		}
		sorted[s] = ys
	}
	n := used
	if n > 10 {
		n = 10
	}
	for i := 0; i < n; i++ {
		tab.AddRow(itoa(i+1),
			f3(sorted[featsel.PairGain][i]), f3(sorted[featsel.CountPath][i]),
			f3(sorted[featsel.GainPath][i]), f3(sorted[featsel.HStat][i]))
	}
	r.Tables = append(r.Tables, tab)
	return r, nil
}

// RunTable1 reproduces Table 1: Mean/SD/Min/Max AP per strategy plus
// Welch's t-tests against Gain-Path (the paper: no strategy differs
// significantly from Gain-Path at α = 0.05).
func RunTable1(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	aps, used, err := interactionSweep(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "table1", Title: "AP summary per interaction strategy"}
	r.Notes = append(r.Notes, fmt.Sprintf("%d of 120 interaction sets evaluated at scale %q", used, p.Scale))
	tab := Table{Name: "Table 1", Header: []string{"", "Pair-Gain", "Count-Path", "Gain-Path", "H-Stat"}}
	order := []featsel.InteractionStrategy{featsel.PairGain, featsel.CountPath, featsel.GainPath, featsel.HStat}
	summaries := map[featsel.InteractionStrategy]stats.Summary{}
	for _, s := range order {
		summaries[s] = stats.Summarize(aps[s])
	}
	tab.AddRow("Mean", f3(summaries[order[0]].Mean), f3(summaries[order[1]].Mean), f3(summaries[order[2]].Mean), f3(summaries[order[3]].Mean))
	tab.AddRow("SD", f3(summaries[order[0]].SD), f3(summaries[order[1]].SD), f3(summaries[order[2]].SD), f3(summaries[order[3]].SD))
	tab.AddRow("Min", f3(summaries[order[0]].Min), f3(summaries[order[1]].Min), f3(summaries[order[2]].Min), f3(summaries[order[3]].Min))
	tab.AddRow("Max", f3(summaries[order[0]].Max), f3(summaries[order[1]].Max), f3(summaries[order[2]].Max), f3(summaries[order[3]].Max))
	r.Tables = append(r.Tables, tab)

	welch := Table{Name: "Welch's t-test vs Gain-Path (two-tailed)", Header: []string{"strategy", "t", "df", "p"}}
	for _, s := range order {
		if s == featsel.GainPath {
			continue
		}
		res := stats.WelchTTest(aps[s], aps[featsel.GainPath])
		welch.AddRow(string(s), f4(res.T), f4(res.DF), f4(res.P))
	}
	r.Tables = append(r.Tables, welch)

	// Bootstrap CIs on the mean APs (beyond the paper: quantifies how
	// much the Table 1 means could move under resampling of the
	// interaction sets).
	boot := Table{Name: "bootstrap 95% CI of mean AP", Header: []string{"strategy", "lo", "hi"}}
	rng := rand.New(rand.NewSource(p.Seed + 7))
	for _, s := range order {
		lo, hi := stats.BootstrapCI(aps[s], stats.Mean, 2000, 0.95, rng)
		boot.AddRow(string(s), f3(lo), f3(hi))
	}
	r.Tables = append(r.Tables, boot)
	return r, nil
}

// RunTable2 reproduces Table 2: R² of the forest and of the GEF explainer
// against both the forest predictions and the original labels, on the
// original test splits of D′ and D″ (with F″ fixed to the injected
// interactions for D″, as the paper does).
func RunTable2(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	r := &Report{ID: "table2", Title: "R² fidelity of forest and GAM on D' and D''"}
	tab := Table{Name: "Table 2", Header: []string{"dataset", "model", "R² vs T(x)", "R² vs y"}}

	// D′ — no interactions.
	f1, _, test1, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	e1, err := core.ExplainCtx(p.Context(), f1, core.Config{
		NumUnivariate: 5, NumSamples: z.dstarN,
		Sampling: sampling.Config{Strategy: sampling.EquiSize, K: z.table2K},
		GAM:      gam.Options{Lambdas: z.lambdas},
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, err
	}
	row1, err := e1.EvaluateOnCtx(p.Context(), test1)
	if err != nil {
		return nil, err
	}
	tab.AddRow("D'", "Forest (T)", "-", f3(row1.ForestVsLabels))
	tab.AddRow("D'", "Explainer (GAM)", f3(row1.GamVsForest), f3(row1.GamVsLabels))

	// D″ — paper fixes F″ = {(f1,f2), (f1,f5), (f2,f5)} (1-based), i.e.
	// pairs (0,1), (0,4), (1,4).
	truth := [][2]int{{0, 1}, {0, 4}, {1, 4}}
	f2, _, test2, err := gdoubleForest(p, z, truth, z.synthTrees)
	if err != nil {
		return nil, err
	}
	e2, err := core.ExplainCtx(p.Context(), f2, core.Config{
		NumUnivariate: 5, NumSamples: z.dstarN,
		Sampling:    sampling.Config{Strategy: sampling.EquiSize, K: z.table2K},
		GAM:         gam.Options{Lambdas: z.lambdas},
		ForcedPairs: truth,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	row2, err := e2.EvaluateOnCtx(p.Context(), test2)
	if err != nil {
		return nil, err
	}
	tab.AddRow("D''", "Forest (T)", "-", f3(row2.ForestVsLabels))
	tab.AddRow("D''", "Explainer (GAM)", f3(row2.GamVsForest), f3(row2.GamVsLabels))
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		"paper values — D': forest 0.980, GAM 0.986/0.982; D'': forest 0.986, GAM 0.938/0.931")
	return r, nil
}
