package experiments

import (
	"fmt"
	"sync"

	"gef/internal/dataset"
	"gef/internal/forest"
	"gef/internal/gam"
	"gef/internal/gbdt"
)

// sizes bundles every scale-dependent knob in one place.
type sizes struct {
	// Synthetic g′/g″ experiments (§4).
	synthRows   int
	synthTrees  int
	synthLeaves int
	synthLR     float64
	dstarN      int // |D*|
	fig5Ks      []int
	fig4K       int
	table2K     int
	fig6Triples int // how many of the 120 interaction sets to evaluate
	fig6Trees   int
	hstatSample int
	// Real-world experiments (§5).
	superconRows   int
	superconTrees  int
	superconLeaves int
	censusRows     int
	censusTrees    int
	fig7Splines    []int
	fig7Inters     []int
	fig8Ks         []int
	fig9K          int
	fig10K         int
	realDstarN     int
	lambdas        []float64
	logitLambdas   []float64
}

func sizesFor(s Scale) sizes {
	if s == Paper {
		return sizes{
			synthRows: 10000, synthTrees: 1000, synthLeaves: 32, synthLR: 0.01,
			dstarN: 100000,
			fig5Ks: []int{100, 500, 1000, 2000, 5000, 12000, 20000},
			fig4K:  12000, table2K: 12000,
			fig6Triples: 120, fig6Trees: 300, hstatSample: 150,
			superconRows: dataset.SuperconductivityRows, superconTrees: 500, superconLeaves: 32,
			censusRows: dataset.CensusRows, censusTrees: 300,
			fig7Splines: []int{1, 2, 3, 4, 5, 6, 7, 8, 9},
			fig7Inters:  []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
			fig8Ks:      []int{500, 1500, 4500, 9000, 15000},
			fig9K:       4500, fig10K: 800,
			realDstarN:   100000,
			lambdas:      gam.LogSpace(1e-4, 1e6, 21),
			logitLambdas: gam.LogSpace(1e-2, 1e4, 9),
		}
	}
	return sizes{
		synthRows: 4000, synthTrees: 120, synthLeaves: 16, synthLR: 0.1,
		dstarN: 10000,
		fig5Ks: []int{25, 50, 100, 200, 400},
		fig4K:  300, table2K: 300,
		fig6Triples: 12, fig6Trees: 60, hstatSample: 60,
		superconRows: 4000, superconTrees: 80, superconLeaves: 16,
		censusRows: 4000, censusTrees: 60,
		fig7Splines: []int{1, 3, 5, 7, 9},
		fig7Inters:  []int{0, 2, 4, 8},
		fig8Ks:      []int{50, 150, 400},
		fig9K:       300, fig10K: 60,
		realDstarN:   8000,
		lambdas:      gam.LogSpace(1e-2, 1e4, 9),
		logitLambdas: gam.LogSpace(1e-1, 1e3, 5),
	}
}

// forestCache memoizes trained forests within a process so running
// several experiments (e.g. fig9 + fig11 + fig12) trains each black-box
// model once.
var forestCache sync.Map // key string → *forest.Forest

func cachedForest(key string, train func() (*forest.Forest, error)) (*forest.Forest, error) {
	if v, ok := forestCache.Load(key); ok {
		return v.(*forest.Forest), nil
	}
	f, err := train()
	if err != nil {
		return nil, err
	}
	forestCache.Store(key, f)
	return f, nil
}

// gprimeForest trains (or fetches) the forest over D′ at the given scale.
// The paper's protocol: train/test split, 25% of train for early stopping.
func gprimeForest(p Params, z sizes) (*forest.Forest, *dataset.Dataset, *dataset.Dataset, error) {
	ds := dataset.GPrime(z.synthRows, 0.1, p.Seed+100)
	train, test := ds.Split(0.2, p.Seed+101)
	key := fmt.Sprintf("gprime/%s/%d", p.Scale, p.Seed)
	f, err := cachedForest(key, func() (*forest.Forest, error) {
		tr, va := train.Split(0.25, p.Seed+102)
		f, _, err := gbdt.TrainValidCtx(p.Context(), tr, va, gbdt.Params{
			NumTrees: z.synthTrees, NumLeaves: z.synthLeaves, LearningRate: z.synthLR,
			EarlyStoppingRounds: 30, Seed: p.Seed,
		})
		return f, err
	})
	return f, train, test, err
}

// gdoubleForest trains a forest over D″ for a given interaction set.
func gdoubleForest(p Params, z sizes, pairs [][2]int, trees int) (*forest.Forest, *dataset.Dataset, *dataset.Dataset, error) {
	ds := dataset.GDoublePrime(z.synthRows, 0.1, p.Seed+200, pairs)
	train, test := ds.Split(0.2, p.Seed+201)
	tr, va := train.Split(0.25, p.Seed+202)
	f, _, err := gbdt.TrainValidCtx(p.Context(), tr, va, gbdt.Params{
		NumTrees: trees, NumLeaves: z.synthLeaves, LearningRate: z.synthLR,
		EarlyStoppingRounds: 30, Seed: p.Seed,
	})
	return f, train, test, err
}

// superconForest trains (or fetches) the Superconductivity forest.
func superconForest(p Params, z sizes) (*forest.Forest, *dataset.Dataset, *dataset.Dataset, error) {
	ds := dataset.SuperconductivityN(z.superconRows, p.Seed+300)
	train, test := ds.Split(0.2, p.Seed+301)
	key := fmt.Sprintf("supercon/%s/%d", p.Scale, p.Seed)
	f, err := cachedForest(key, func() (*forest.Forest, error) {
		tr, va := train.Split(0.25, p.Seed+302)
		f, _, err := gbdt.TrainValidCtx(p.Context(), tr, va, gbdt.Params{
			NumTrees: z.superconTrees, NumLeaves: z.superconLeaves, LearningRate: 0.1,
			EarlyStoppingRounds: 30, Seed: p.Seed,
		})
		return f, err
	})
	return f, train, test, err
}

// rfForest trains (or fetches) a Random Forest over D′ for the §6
// future-work experiment.
func rfForest(p Params, z sizes) (*forest.Forest, *dataset.Dataset, *dataset.Dataset, error) {
	ds := dataset.GPrime(z.synthRows, 0.1, p.Seed+100)
	train, test := ds.Split(0.2, p.Seed+101)
	key := fmt.Sprintf("rf/%s/%d", p.Scale, p.Seed)
	f, err := cachedForest(key, func() (*forest.Forest, error) {
		return gbdt.TrainRF(train, gbdt.RFParams{
			NumTrees: z.synthTrees / 2, NumLeaves: 64, FeatureFraction: 0.8, Seed: p.Seed,
		})
	})
	return f, train, test, err
}

// censusForest trains (or fetches) the Census classification forest on
// the one-hot encoded table (education dropped, per the paper).
func censusForest(p Params, z sizes) (*forest.Forest, *dataset.Dataset, *dataset.Dataset, error) {
	ds := dataset.CensusN(z.censusRows, p.Seed+400)
	train, test := ds.Split(0.2, p.Seed+401)
	key := fmt.Sprintf("census/%s/%d", p.Scale, p.Seed)
	f, err := cachedForest(key, func() (*forest.Forest, error) {
		tr, va := train.Split(0.25, p.Seed+402)
		f, _, err := gbdt.TrainValidCtx(p.Context(), tr, va, gbdt.Params{
			NumTrees: z.censusTrees, NumLeaves: 16, LearningRate: 0.1,
			Objective:           forest.BinaryLogistic,
			EarlyStoppingRounds: 30, Seed: p.Seed,
		})
		return f, err
	})
	return f, train, test, err
}
