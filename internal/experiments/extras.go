package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"gef/internal/core"
	"gef/internal/distill"
	"gef/internal/gam"
	"gef/internal/sampling"
)

// The "extra-" experiments go beyond the paper: they print the ablations
// DESIGN.md commits to and the behaviour of the repository's extensions,
// using the same harness and scales as the paper experiments.

// RunExtraSurrogates compares GEF's GAM against single-tree distillation
// at matched interpretability budgets — the quantitative version of the
// paper's related-work argument for GAMs over tree prototypes.
func RunExtraSurrogates(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "extra-surrogates", Title: "Surrogate comparison: GEF GAM vs distilled tree"}

	e, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 5,
		NumSamples:    z.dstarN,
		Sampling:      sampling.Config{Strategy: sampling.EquiSize, K: z.fig4K},
		GAM:           gam.Options{Lambdas: z.lambdas},
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tab := Table{Name: "fidelity to the forest (held-out D*)", Header: []string{"surrogate", "components", "RMSE", "R²"}}
	tab.AddRow("GEF GAM", "5 splines", f4(e.Fidelity.RMSE), f4(e.Fidelity.R2))
	for _, leaves := range []int{8, 16, 64, 256} {
		res, err := distill.Distill(f, distill.Config{
			MaxLeaves: leaves, NumSamples: z.dstarN, Seed: p.Seed,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow("distilled tree", fmt.Sprintf("%d leaves", leaves), f4(res.RMSE), f4(res.R2))
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		"a readable tree (≤16 leaves) cannot match the 5-spline GAM on a smooth additive forest")
	return r, nil
}

// RunExtraAuto traces the AutoExplain component search on the
// Superconductivity forest — the automated version of reading the elbow
// off the paper's Fig. 7.
func RunExtraAuto(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := superconForest(p, z)
	if err != nil {
		return nil, err
	}
	e, trace, err := core.AutoExplain(f, core.AutoConfig{
		Base: core.Config{
			NumSamples: z.realDstarN,
			Sampling:   sampling.Config{Strategy: sampling.EquiSize, K: z.fig9K},
			GAM:        gam.Options{Lambdas: z.lambdas},
			Seed:       p.Seed,
		},
		MaxUnivariate:   9,
		MaxInteractions: 3,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "extra-auto", Title: "AutoExplain component search on Superconductivity"}
	tab := Table{Name: "search trace", Header: []string{"splines", "interactions", "RMSE", "verdict"}}
	for _, s := range trace {
		verdict := "rejected"
		if s.Accepted {
			verdict = "accepted"
		}
		tab.AddRow(itoa(s.NumUnivariate), itoa(s.NumInteractions), f4(s.RMSE), verdict)
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"chosen: %d splines, %d interactions — fidelity RMSE %.4f, R² %.4f",
		len(e.Features), len(e.Pairs), e.Fidelity.RMSE, e.Fidelity.R2))
	return r, nil
}

// RunExtraEngine measures the staged engine's cross-call artifact cache:
// the same AutoExplain search run twice on one session — cold, then warm
// — with the per-stage hit/miss counters that show which pipeline
// artifacts (forest stats, feature ranking, domains, D*, interaction
// scores, B-spline bases) the second run served from memory.
func RunExtraEngine(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, _, _, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine()
	acfg := core.AutoConfig{
		Base: core.Config{
			NumSamples: z.dstarN,
			Sampling:   sampling.Config{Strategy: sampling.EquiSize, K: z.fig4K},
			GAM:        gam.Options{Lambdas: z.lambdas},
			Seed:       p.Seed,
		},
		MaxUnivariate:   5,
		MaxInteractions: 1,
	}
	var elapsed [2]time.Duration
	for i := range elapsed {
		start := time.Now()
		if _, _, err := eng.AutoExplainCtx(p.Context(), f, acfg); err != nil {
			return nil, err
		}
		elapsed[i] = time.Since(start)
	}
	stats := eng.CacheStats()

	r := &Report{ID: "extra-engine", Title: "Staged engine: cold vs warm AutoExplain artifact reuse"}
	tab := Table{Name: "per-stage artifact cache (two identical searches)", Header: []string{"stage", "hits", "misses"}}
	names := make([]string, 0, len(stats.Stages))
	for name := range stats.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats.Stages[name]
		tab.AddRow(name, itoa(int(st.Hits)), itoa(int(st.Misses)))
	}
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		fmt.Sprintf("cold %v vs warm %v on one session — %d hits / %d misses, %d cached artifacts",
			elapsed[0].Round(time.Millisecond), elapsed[1].Round(time.Millisecond),
			stats.Hits, stats.Misses, stats.Entries),
		"the fit row counts B-spline basis/penalty reuse inside gam; the other rows cache whole pipeline artifacts")
	return r, nil
}

// familyBenchRow is one family's measured cost/quality in
// BENCH_family.json.
type familyBenchRow struct {
	FitMs        float64 `json:"fit_ms"`
	RMSE         float64 `json:"rmse"`
	R2           float64 `json:"r2"`
	Degradations int     `json:"degradations"`
}

// familyBench is the BENCH_family.json shape: per-family fidelity and
// latency over one shared engine session, plus the engine counters that
// prove the D* artifacts were built once and reused across families.
type familyBench struct {
	Name         string                    `json:"name"`
	Go           string                    `json:"go"`
	OS           string                    `json:"os"`
	Arch         string                    `json:"arch"`
	Families     map[string]familyBenchRow `json:"families"`
	EngineHits   int64                     `json:"engine_hits"`
	EngineMisses int64                     `json:"engine_misses"`
}

// familyOrder lists the comparison rows first-party first; registered
// families missing from it (future additions) are appended sorted.
var familyOrder = []string{core.FamilyGAM, core.FamilyRules, core.FamilySmoother, core.FamilyLIME, core.FamilyDistill}

// familiesFor resolves p.Family (comma-separated, empty = all) against
// the registry, preserving the preferred presentation order.
func familiesFor(p Params) ([]string, error) {
	registered := make(map[string]bool)
	for _, fam := range core.Families() {
		registered[fam] = true
	}
	want := registered
	if p.Family != "" {
		want = make(map[string]bool)
		for _, fam := range strings.Split(p.Family, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if !registered[fam] {
				return nil, fmt.Errorf("experiments: unknown explainer family %q (registered: %s)",
					fam, strings.Join(core.Families(), ", "))
			}
			want[fam] = true
		}
	}
	var out []string
	for _, fam := range familyOrder {
		if want[fam] {
			out = append(out, fam)
			delete(want, fam)
		}
	}
	rest := make([]string, 0, len(want))
	for fam := range want {
		rest = append(rest, fam)
	}
	sort.Strings(rest)
	return append(out, rest...), nil
}

// RunExtraFamilies fits every registered explainer family on the same
// forest over one engine session and reports fidelity (held-out D*),
// fit latency and degradation counts side by side. The first family pays
// for the shared pipeline artifacts (stats, domains, D* sample); every
// later family must reuse them from the engine cache — the per-stage
// hit counters in the second table are the proof. When OutDir is set the
// comparison also lands in OutDir/BENCH_family.json (gated by verify.sh).
func RunExtraFamilies(p Params) (*Report, error) {
	p = p.withDefaults()
	fams, err := familiesFor(p)
	if err != nil {
		return nil, err
	}
	z := sizesFor(p.Scale)
	f, _, _, err := gprimeForest(p, z)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine()
	base := core.Config{
		NumUnivariate: 5,
		NumSamples:    z.dstarN,
		Sampling:      sampling.Config{Strategy: sampling.EquiSize, K: z.fig4K},
		GAM:           gam.Options{Lambdas: z.lambdas},
		Seed:          p.Seed,
	}
	bench := familyBench{
		Name:     "gef-extra-families",
		Go:       runtime.Version(),
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
		Families: make(map[string]familyBenchRow, len(fams)),
	}
	r := &Report{ID: "extra-families", Title: "Explainer families on one engine session"}
	tab := Table{Name: "fidelity and latency per family (held-out D*)", Header: []string{"family", "fit ms", "RMSE", "R²", "degradations"}}
	for _, fam := range fams {
		cfg := base
		cfg.Family = fam
		start := time.Now()
		e, err := eng.ExplainCtx(p.Context(), f, cfg)
		if err != nil {
			return nil, fmt.Errorf("family %s: %w", fam, err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		tab.AddRow(fam, f1(ms), f4(e.Fidelity.RMSE), f4(e.Fidelity.R2), itoa(len(e.Degradations)))
		bench.Families[fam] = familyBenchRow{
			FitMs: ms, RMSE: e.Fidelity.RMSE, R2: e.Fidelity.R2,
			Degradations: len(e.Degradations),
		}
	}
	r.Tables = append(r.Tables, tab)

	stats := eng.CacheStats()
	bench.EngineHits, bench.EngineMisses = stats.Hits, stats.Misses
	cacheTab := Table{Name: "per-stage artifact cache across families", Header: []string{"stage", "hits", "misses"}}
	names := make([]string, 0, len(stats.Stages))
	for name := range stats.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := stats.Stages[name]
		cacheTab.AddRow(name, itoa(int(st.Hits)), itoa(int(st.Misses)))
	}
	r.Tables = append(r.Tables, cacheTab)
	if len(fams) > 1 && stats.Hits == 0 {
		return nil, fmt.Errorf("experiments: no engine cache hits across %d families — cross-family artifact reuse is broken", len(fams))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("one engine session, %d families: %d artifact hits / %d misses — stats, domains and D* are built once and shared",
			len(fams), stats.Hits, stats.Misses),
		"gam fits per-call (basis cache counters fold into the fit row); rules/smoother models are cached as fit-stage artifacts")

	if p.OutDir != "" {
		if err := os.MkdirAll(p.OutDir, 0o755); err != nil {
			return nil, err
		}
		blob, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return nil, err
		}
		path := filepath.Join(p.OutDir, "BENCH_family.json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		r.Notes = append(r.Notes, "benchmark written to "+path)
	}
	return r, nil
}

// f1 formats with 1 decimal for latency cells.
func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// RunExtraRandomForest applies GEF to a Random Forest — the paper's §6
// future work — and reports the same fidelity numbers as Table 2.
func RunExtraRandomForest(p Params) (*Report, error) {
	p = p.withDefaults()
	z := sizesFor(p.Scale)
	f, train, test, err := rfForest(p, z)
	if err != nil {
		return nil, err
	}
	_ = train
	e, err := core.ExplainCtx(p.Context(), f, core.Config{
		NumUnivariate: 5,
		NumSamples:    z.dstarN,
		Sampling:      sampling.Config{Strategy: sampling.EquiSize, K: z.fig4K},
		GAM:           gam.Options{Lambdas: z.lambdas},
		Seed:          p.Seed,
	})
	if err != nil {
		return nil, err
	}
	row, err := e.EvaluateOnCtx(p.Context(), test)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "extra-rf", Title: "GEF on a Random Forest (paper §6 future work)"}
	tab := Table{Name: "fidelity", Header: []string{"model", "R² vs T(x)", "R² vs y"}}
	tab.AddRow("Random Forest (T)", "-", f3(row.ForestVsLabels))
	tab.AddRow("Explainer (GAM)", f3(row.GamVsForest), f3(row.GamVsLabels))
	r.Tables = append(r.Tables, tab)
	r.Notes = append(r.Notes,
		"no GEF change is needed: RF forests expose the same thresholds/gains interface")
	return r, nil
}
